//! `st-campaign::fuzz`: a deterministic, resumable, coverage-guided fuzzer
//! over [`GeneratorSpec`] space whose oracle is the always-on
//! [`InvariantChecker`].
//!
//! # How a session works
//!
//! The session grows one [`Campaign`] round by round. Round 0 is the
//! configured seed inputs; every later round is derived *only* from
//! `(corpus so far, master seed, round index)`: an energy scheduler picks
//! parents from the corpus proportional to the novelty they contributed,
//! and a [`SpecMutator`] perturbs the parent's spec (or splices its seed,
//! or flips its workload). Each round executes through
//! [`Campaign::run_resumed`] against the accumulated [`OutcomeStore`], so
//! the engine's existing contract — byte-identical outcomes across any
//! worker count and any interrupt→resume split — carries over to the
//! fuzzer wholesale: batch derivation reads only outcomes, and outcomes
//! are thread-count-independent.
//!
//! # Coverage
//!
//! A [`CoverageMap`] holds feature bits derived from each
//! `(scenario, outcome)` pair: the spec's decorator-stack fingerprint,
//! workload/status, decision-latency and FD-stabilization buckets, which
//! winner sets appeared, which Π sets were exercised *with claims armed*
//! (the empirical analogue of extracting timeliness graphs), flap and
//! decision-count profiles, step-count buckets (the run-length proxy for
//! register op profiles — outcomes carry no per-op counts), and which
//! violation kinds fired. An input enters the corpus iff it contributed at
//! least one new feature; its energy is the number it contributed.
//!
//! The corpus is *not* a separate artifact: it is recomputed from the
//! outcome store's entries, which is why resuming from the store resumes
//! the corpus too.

use std::collections::BTreeSet;

use st_core::Universe;
use st_sched::{GeneratorSpec, SpecMutator, SpecRng};

use crate::campaign::Campaign;
use crate::invariant::InvariantChecker;
use crate::scenario::{OutcomeData, Scenario, ScenarioOutcome, Workload};
use crate::store::OutcomeStore;

// Feature classes (top byte of a feature word). The payload keeps the low
// 56 bits.
const CLASS_FAMILY: u64 = 1;
const CLASS_STATUS: u64 = 2;
const CLASS_LATENCY: u64 = 3;
const CLASS_DECISIONS: u64 = 4;
const CLASS_STABILIZATION: u64 = 5;
const CLASS_WINNERSET: u64 = 6;
const CLASS_FLAPS: u64 = 7;
const CLASS_PI: u64 = 8;
const CLASS_CLAIMS: u64 = 9;
const CLASS_VIOLATION: u64 = 10;
const CLASS_STEPS: u64 = 11;
const CLASS_BG: u64 = 12;
const CLASS_CE_LEN: u64 = 13;

fn feature(class: u64, payload: u64) -> u64 {
    (class << 56) | (payload & ((1 << 56) - 1))
}

/// log2-ish bucket: 0 → 0, otherwise the bit length of `x`.
fn bucket(x: u64) -> u64 {
    if x == 0 {
        0
    } else {
        64 - x.leading_zeros() as u64
    }
}

fn fnv(parts: impl IntoIterator<Item = u64>) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for part in parts {
        for byte in part.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

fn fnv_str(s: &str) -> u64 {
    fnv(s.bytes().map(|b| b as u64))
}

/// DFS over the spec tree collecting family names — the decorator-stack
/// fingerprint.
fn spec_families(spec: &GeneratorSpec, out: &mut Vec<&'static str>) {
    out.push(spec.family());
    match spec {
        GeneratorSpec::SetTimely { filler, .. } | GeneratorSpec::Flapping { filler, .. } => {
            spec_families(filler, out)
        }
        GeneratorSpec::Eventually { prefix, body, .. } => {
            spec_families(prefix, out);
            spec_families(body, out);
        }
        GeneratorSpec::CrashAfter { inner, .. }
        | GeneratorSpec::GrayFailure { inner, .. }
        | GeneratorSpec::BurstClog { inner, .. }
        | GeneratorSpec::CrashRecovery { inner, .. } => spec_families(inner, out),
        GeneratorSpec::Replay { of, .. } => spec_families(of, out),
        _ => {}
    }
}

fn status_tag(status: st_sim::RunStatus) -> u64 {
    match status {
        st_sim::RunStatus::Stopped => 0,
        st_sim::RunStatus::MaxSteps => 1,
        st_sim::RunStatus::SourceEnded => 2,
        st_sim::RunStatus::Stuck(p) => 3 + p.index() as u64,
    }
}

/// The feature bits one `(scenario, outcome)` pair exhibits.
pub fn features(scenario: &Scenario, outcome: &ScenarioOutcome) -> Vec<u64> {
    let mut feats = Vec::new();
    let mut families = Vec::new();
    spec_families(&scenario.generator, &mut families);
    feats.push(feature(
        CLASS_FAMILY,
        fnv(families.iter().map(|f| fnv_str(f))),
    ));
    // Armed claims: which Π sets this input exercises with the checker
    // watching, and whether termination/windows are owed at all.
    let checker = InvariantChecker::for_scenario(scenario);
    if let Some(g) = checker.guarantee() {
        feats.push(feature(
            CLASS_PI,
            (g.p.bits() << 20) | (g.q.bits() << 4) | bucket(g.bound as u64),
        ));
    }
    feats.push(feature(
        CLASS_CLAIMS,
        (checker.termination_owed() as u64) << 8 | bucket(checker.window_count() as u64),
    ));
    let workload_tag = match &scenario.workload {
        Workload::FdConvergence { .. } => 0u64,
        Workload::Agreement { .. } => 1,
        Workload::AdversarialAgreement { .. } => 2,
        Workload::BgReduction { .. } => 3,
        Workload::LeanConvergence { .. } => 4,
        Workload::LeanAgreement { .. } => 5,
        Workload::WideFdConvergence { .. } => 6,
    };
    match &outcome.data {
        OutcomeData::Fd(fd) => {
            feats.push(feature(
                CLASS_STATUS,
                (workload_tag << 8) | status_tag(fd.status),
            ));
            feats.push(feature(CLASS_STEPS, (workload_tag << 8) | bucket(fd.steps)));
            match &fd.stabilization {
                Some(st) => {
                    feats.push(feature(CLASS_STABILIZATION, 1 << 8 | bucket(st.step)));
                    feats.push(feature(CLASS_WINNERSET, st.winnerset.bits()));
                }
                None => feats.push(feature(CLASS_STABILIZATION, 0)),
            }
            feats.push(feature(CLASS_FLAPS, bucket(fd.late_flaps as u64)));
        }
        OutcomeData::Agreement(a) => {
            feats.push(feature(
                CLASS_STATUS,
                (workload_tag << 8) | status_tag(a.status),
            ));
            // Decision-latency histogram bucket; undecided is its own bin.
            feats.push(feature(
                CLASS_LATENCY,
                match a.decided_at {
                    Some(step) => 1 << 8 | bucket(step),
                    None => 0,
                },
            ));
            feats.push(feature(
                CLASS_DECISIONS,
                (a.distinct_decisions() as u64) << 8 | a.decided_count() as u64,
            ));
        }
        OutcomeData::Adversarial(a) => {
            feats.push(feature(
                CLASS_STATUS,
                (workload_tag << 8) | status_tag(a.status),
            ));
            feats.push(feature(
                CLASS_DECISIONS,
                (a.blocked as u64) << 8 | a.decided as u64,
            ));
        }
        OutcomeData::Bg(b) => {
            feats.push(feature(
                CLASS_STATUS,
                (workload_tag << 8) | status_tag(b.status),
            ));
            feats.push(feature(
                CLASS_BG,
                (b.stalled.bits() << 16) | bucket(b.max_live_bound as u64),
            ));
        }
        OutcomeData::Lean(l) => {
            feats.push(feature(
                CLASS_STATUS,
                (workload_tag << 8) | status_tag(l.status),
            ));
            match &l.stabilization {
                Some(st) => {
                    feats.push(feature(
                        CLASS_STABILIZATION,
                        1 << 8 | (st.leader as u64) << 16 | bucket(st.step),
                    ));
                }
                None => feats.push(feature(CLASS_STABILIZATION, 0)),
            }
            feats.push(feature(CLASS_FLAPS, bucket(l.late_flaps as u64)));
            feats.push(feature(
                CLASS_DECISIONS,
                (l.distinct_values.len() as u64) << 8 | l.decided as u64,
            ));
        }
        OutcomeData::WideFd(w) => {
            feats.push(feature(
                CLASS_STATUS,
                (workload_tag << 8) | status_tag(w.status),
            ));
            feats.push(feature(CLASS_STEPS, (workload_tag << 8) | bucket(w.steps)));
            match &w.stabilization {
                Some(st) => {
                    feats.push(feature(CLASS_STABILIZATION, 1 << 8 | bucket(st.step)));
                    feats.push(feature(CLASS_WINNERSET, st.winnerset_code));
                }
                None => feats.push(feature(CLASS_STABILIZATION, 0)),
            }
            feats.push(feature(CLASS_FLAPS, bucket(w.late_flaps as u64)));
        }
    }
    for v in &outcome.violations {
        feats.push(feature(CLASS_VIOLATION, fnv_str(v.kind())));
    }
    if let Some(ce) = &outcome.counterexample {
        feats.push(feature(CLASS_CE_LEN, bucket(ce.len() as u64)));
    }
    feats
}

/// The set of feature bits a fuzz session has exhibited so far.
#[derive(Clone, Default, Debug)]
pub struct CoverageMap {
    seen: BTreeSet<u64>,
}

impl CoverageMap {
    /// An empty map.
    pub fn new() -> Self {
        CoverageMap::default()
    }

    /// Distinct features seen.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// `true` before anything is observed.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }

    /// How many of `feats` are new without recording them.
    pub fn novelty(&self, feats: &[u64]) -> usize {
        feats.iter().filter(|f| !self.seen.contains(f)).count()
    }

    /// Records `feats`; returns how many were new.
    pub fn observe(&mut self, feats: &[u64]) -> usize {
        feats.iter().filter(|&&f| self.seen.insert(f)).count()
    }
}

/// One fuzzable input: a spec, a workload (as an index into
/// [`FuzzConfig::workloads`]), and a scenario seed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FuzzInput {
    /// The generator spec (the mutation substrate).
    pub spec: GeneratorSpec,
    /// Index into the session's workload table.
    pub workload: usize,
    /// The scenario seed.
    pub seed: u64,
}

/// A corpus entry: an input that contributed novel coverage, with the
/// novelty count as its scheduling energy.
#[derive(Clone, Debug)]
pub struct CorpusEntry {
    /// The campaign rank of the scenario that earned the entry.
    pub rank: usize,
    /// The input.
    pub input: FuzzInput,
    /// Novel features contributed (≥ 1; the energy weight).
    pub novelty: usize,
}

/// An invariant violation the fuzzer found.
#[derive(Clone, Debug)]
pub struct Finding {
    /// The campaign rank of the violating scenario.
    pub rank: usize,
    /// The violating scenario (re-runnable).
    pub scenario: Scenario,
    /// Its outcome, violations and counterexample included.
    pub outcome: ScenarioOutcome,
}

/// Configuration of a fuzz session.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// The campaign key outcomes are recorded under.
    pub key: String,
    /// The process universe.
    pub universe: Universe,
    /// The workload table [`FuzzInput::workload`] indexes into.
    pub workloads: Vec<Workload>,
    /// Round-0 inputs (need not be violation-free, but the interesting
    /// sessions start from clean seeds and let mutation find trouble).
    pub seeds: Vec<FuzzInput>,
    /// The master seed every round's mutation RNG derives from.
    pub master_seed: u64,
    /// Total scenario budget for the session.
    pub budget: usize,
    /// Scenarios per round (the unit of corpus feedback).
    pub batch: usize,
    /// Per-scenario step budget.
    pub step_budget: u64,
    /// Worker threads (outcomes are identical for every value).
    pub threads: usize,
    /// Stop at the end of the first round that produced a finding.
    pub stop_on_finding: bool,
}

/// What a fuzz session produced.
#[derive(Clone, Debug)]
pub struct FuzzReport {
    /// Scenarios executed (≤ budget; < only with `stop_on_finding`).
    pub executed: usize,
    /// Rounds run.
    pub rounds: usize,
    /// Distinct coverage features exhibited.
    pub coverage: usize,
    /// The corpus, in rank order.
    pub corpus: Vec<CorpusEntry>,
    /// Every invariant violation found, in rank order.
    pub findings: Vec<Finding>,
}

/// A deterministic, resumable, coverage-guided fuzz session. See the
/// module docs for the determinism argument.
pub struct FuzzSession {
    cfg: FuzzConfig,
}

impl FuzzSession {
    /// A session over `cfg`.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is vacuous: no seeds, no workloads, a
    /// zero batch, an out-of-range seed workload index, or a budget too
    /// small to run every seed.
    pub fn new(cfg: FuzzConfig) -> Self {
        assert!(!cfg.workloads.is_empty(), "fuzz session needs workloads");
        assert!(!cfg.seeds.is_empty(), "fuzz session needs seed inputs");
        assert!(cfg.batch >= 1, "fuzz batch must be at least 1");
        assert!(
            cfg.budget >= cfg.seeds.len(),
            "fuzz budget smaller than the seed set"
        );
        assert!(
            cfg.seeds.iter().all(|s| s.workload < cfg.workloads.len()),
            "seed workload index out of range"
        );
        FuzzSession { cfg }
    }

    fn scenario_for(&self, round: usize, slot: usize, input: &FuzzInput) -> Scenario {
        Scenario::new(
            format!("fuzz/r{round}/s{slot}/{}", input.spec.family()),
            self.cfg.universe,
            input.spec.clone(),
            self.cfg.workloads[input.workload].clone(),
            self.cfg.step_budget,
            input.seed,
        )
    }

    /// Derives round `round`'s inputs from the corpus: energy-weighted
    /// parent choice, then one mutation (spec perturbation, seed splice, or
    /// workload flip). Pure in `(corpus, master_seed, round)`.
    fn derive(
        &self,
        mutator: &SpecMutator,
        corpus: &[CorpusEntry],
        round: usize,
    ) -> Vec<FuzzInput> {
        let mut rng = SpecRng::new(
            self.cfg
                .master_seed
                .wrapping_add((round as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        );
        let total: u64 = corpus.iter().map(|e| e.novelty as u64).sum();
        (0..self.cfg.batch)
            .map(|_| {
                let mut pick = rng.below(total);
                let parent = corpus
                    .iter()
                    .find(|e| {
                        if pick < e.novelty as u64 {
                            true
                        } else {
                            pick -= e.novelty as u64;
                            false
                        }
                    })
                    .unwrap_or_else(|| corpus.last().expect("corpus non-empty"));
                let mut input = parent.input.clone();
                match rng.below(8) {
                    0 => input.seed = input.seed.wrapping_add(rng.next_u64() >> 32),
                    1 if self.cfg.workloads.len() > 1 => {
                        input.workload = rng.below(self.cfg.workloads.len() as u64) as usize;
                    }
                    _ => input.spec = mutator.mutate(&input.spec, &mut rng),
                }
                input
            })
            .collect()
    }

    /// Runs the session. `resume` seeds the accumulated outcome store (an
    /// interrupted session's store resumes both outcomes and corpus);
    /// `record`, when given, receives the final store. Returns the report.
    pub fn run(
        &self,
        resume: Option<&OutcomeStore>,
        record: Option<&mut OutcomeStore>,
    ) -> FuzzReport {
        let cfg = &self.cfg;
        let mutator = SpecMutator::new(cfg.universe);
        let mut acc = resume.cloned().unwrap_or_default();
        let mut campaign = Campaign::new();
        let mut coverage = CoverageMap::new();
        let mut corpus: Vec<CorpusEntry> = Vec::new();
        let mut findings: Vec<Finding> = Vec::new();
        let mut round = 0usize;
        while campaign.len() < cfg.budget {
            let slots = cfg.batch.min(cfg.budget - campaign.len());
            let inputs: Vec<FuzzInput> = if round == 0 {
                cfg.seeds.clone()
            } else {
                self.derive(&mutator, &corpus, round)
                    .into_iter()
                    .take(slots)
                    .collect()
            };
            let start = campaign.len();
            for (slot, input) in inputs.iter().enumerate() {
                campaign.push(self.scenario_for(round, slot, input));
            }
            let snapshot = acc.clone();
            let outcomes =
                campaign.run_resumed(cfg.threads, &cfg.key, Some(&snapshot), Some(&mut acc));
            for (i, outcome) in outcomes.iter().enumerate().skip(start) {
                let scenario = &campaign.scenarios()[i];
                let novelty = coverage.observe(&features(scenario, outcome));
                if novelty > 0 {
                    corpus.push(CorpusEntry {
                        rank: outcome.rank,
                        input: inputs[i - start].clone(),
                        novelty,
                    });
                }
                if !outcome.violations.is_empty() {
                    findings.push(Finding {
                        rank: outcome.rank,
                        scenario: scenario.clone(),
                        outcome: outcome.clone(),
                    });
                }
            }
            round += 1;
            if cfg.stop_on_finding && !findings.is_empty() {
                break;
            }
        }
        if let Some(store) = record {
            *store = acc;
        }
        FuzzReport {
            executed: campaign.len(),
            rounds: round,
            coverage: coverage.len(),
            corpus,
            findings,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_core::ProcSet;
    use st_fd::TimeoutPolicy;

    use crate::scenario::{FdAbi, FdDetector};

    fn config(threads: usize, budget: usize) -> FuzzConfig {
        let universe = Universe::new(4).unwrap();
        let p = ProcSet::from_indices([0, 1]);
        let q = ProcSet::from_indices([0, 1, 2]);
        let spec = GeneratorSpec::set_timely(p, q, 4, GeneratorSpec::seeded_random(0));
        FuzzConfig {
            key: "fuzz-test".into(),
            universe,
            workloads: vec![
                Workload::FdConvergence {
                    k: 1,
                    t: 1,
                    policy: TimeoutPolicy::Increment,
                    abi: FdAbi::MachineSlot,
                    detector: FdDetector::SetBased,
                    certify_membership: false,
                },
                Workload::Agreement {
                    t: 1,
                    k: 1,
                    inputs: vec![10, 17, 24, 31],
                    policy: TimeoutPolicy::Increment,
                    certify: None,
                },
            ],
            seeds: vec![
                FuzzInput {
                    spec: spec.clone(),
                    workload: 0,
                    seed: 0xE1AC_5EED,
                },
                FuzzInput {
                    spec,
                    workload: 1,
                    seed: 0xE1AC_5EED,
                },
            ],
            master_seed: 0xF00D,
            budget,
            batch: 4,
            step_budget: 20_000,
            threads,
            stop_on_finding: false,
        }
    }

    /// Coverage features distinguish specs and outcomes but are a pure
    /// function of both.
    #[test]
    fn features_are_pure_and_discriminating() {
        let cfg = config(1, 8);
        let session = FuzzSession::new(cfg.clone());
        let a = session.scenario_for(0, 0, &cfg.seeds[0]);
        let b = session.scenario_for(0, 1, &cfg.seeds[1]);
        let oa = a.run();
        let ob = b.run();
        assert_eq!(features(&a, &oa), features(&a, &oa));
        assert_ne!(features(&a, &oa), features(&b, &ob));
        let mut map = CoverageMap::new();
        let f = features(&a, &oa);
        assert_eq!(map.observe(&f), map.len());
        assert_eq!(map.novelty(&f), 0);
        assert_eq!(map.observe(&f), 0);
    }

    /// The corpus grows past the seeds and coverage strictly dominates a
    /// re-run of the same inputs.
    #[test]
    fn session_accumulates_corpus_and_coverage() {
        let report = FuzzSession::new(config(1, 16)).run(None, None);
        assert_eq!(report.executed, 16);
        assert!(report.corpus.len() >= 2, "seeds must enter the corpus");
        assert!(report.coverage > 0);
        assert!(report.rounds >= 2);
    }

    /// Byte-identical stores across worker counts.
    #[test]
    fn session_is_thread_count_independent() {
        let run = |threads: usize| {
            let mut store = OutcomeStore::new();
            let report = FuzzSession::new(config(threads, 12)).run(None, Some(&mut store));
            (store.to_json_string(), report.executed)
        };
        let (one, n1) = run(1);
        let (four, n4) = run(4);
        let (many, n33) = run(33);
        assert_eq!(one, four);
        assert_eq!(one, many);
        assert_eq!(n1, n4);
        assert_eq!(n1, n33);
    }

    /// Byte-identical stores across an interrupt→resume split: truncate
    /// the store mid-session, resume, compare.
    #[test]
    fn session_resumes_byte_identically() {
        let cfg = config(2, 12);
        let mut full = OutcomeStore::new();
        FuzzSession::new(cfg.clone()).run(None, Some(&mut full));
        // Simulate an interrupt: keep only even-index entries.
        let mut truncated = full.clone();
        truncated.retain(|i, _| i % 2 == 0);
        let mut resumed = OutcomeStore::new();
        FuzzSession::new(cfg).run(Some(&truncated), Some(&mut resumed));
        assert_eq!(resumed.to_json_string(), full.to_json_string());
    }
}
