//! Scenario-campaign engine: "run this protocol over that scenario space"
//! as declarative data, executed in parallel.
//!
//! The paper's results quantify over *families* of schedules — every
//! Theorem 24/26/27 claim ranges over systems `S^i_{j,n}` and crash
//! patterns — so the experiments are grids: generators × crash plans ×
//! seeds × protocol workloads. This crate turns such a grid into data:
//!
//! - a [`Scenario`] is one cell — universe, [`GeneratorSpec`], [`Workload`]
//!   (FD convergence, `(t,k,n)`-agreement via the full stack, the adaptive
//!   adversary, or the BG reduction), stop rule, step budget, seed;
//! - a [`Campaign`] is an ordered list of scenarios with cartesian
//!   [`grid`](Campaign::grid) builders and
//!   [`run_parallel`](Campaign::run_parallel);
//! - a [`ScenarioOutcome`] is the structured, `Eq`-comparable result the
//!   experiment harness renders into its tables.
//!
//! The `st-lab` experiments E2–E8 (all but E1's prefix curves) are
//! campaigns; their bespoke sequential loops were replaced by grids over
//! this engine. E5's solvable cells run [`Workload::Agreement`] with a
//! [`CertifyTimely`] pre-check, its unsolvable cells run
//! [`Workload::AdversarialAgreement`]; E6 is a [`Workload::BgReduction`]
//! grid.
//!
//! # Persistence and resumability
//!
//! Campaigns are *restartable* production sweeps, not one-shot loops:
//!
//! - an [`OutcomeStore`] serializes `(campaign key, rank, scenario spec,
//!   outcome)` entries to a stable, versioned JSON file
//!   ([`store::SCHEMA`]); loading a file written by any other schema
//!   version is a typed [`StoreError::SchemaMismatch`];
//! - [`Campaign::retain`] filters a campaign **without renumbering**:
//!   ranks are permanent, so partial outcome lists slot back into full-run
//!   order;
//! - [`Campaign::skip_completed`] drops every scenario the store already
//!   holds (matching key, rank, and byte-identical serialized spec — the
//!   staleness guard) and returns the stored outcomes;
//! - [`Campaign::run_resumed`] packages the whole lifecycle: reuse, run
//!   the remainder at any thread count, merge in rank order, re-record.
//!   An interrupted-then-resumed sweep returns (and re-writes) **byte
//!   identical** results to an uninterrupted run — differential- and
//!   property-tested in `tests/resume.rs` across interrupt points, random
//!   partitions, and 1/4/oversubscribed worker pools.
//!
//! # Determinism guarantee
//!
//! `run_parallel(threads)` returns **the same outcome list for every
//! `threads` value** — 1, the hardware width, or an oversubscribed count:
//!
//! 1. every scenario is *hermetic*: its simulator, generator, and protocol
//!    stack are built from the scenario's own fields inside the worker that
//!    runs it, so no state crosses scenario boundaries;
//! 2. workers steal scenario *ranks* off a shared atomic counter (the
//!    `sweep_matrix` pattern, shared via [`st_core::parallel`]) — thread
//!    count changes who runs a rank and when, never what the rank computes;
//! 3. results are merged **in ascending rank order**, so the output list is
//!    the sequential left-to-right enumeration regardless of completion
//!    order.
//!
//! Consequently campaign-backed experiment tables are thread-count
//! independent: `stlab --threads N` changes wall-clock only. The guarantee
//! is differential-tested in `tests/determinism.rs` (1 vs 4 vs an
//! oversubscribed worker pool on a mixed generator/crash/seed grid).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod campaign;
pub mod counterexample;
pub mod fuzz;
pub mod invariant;
mod scenario;
pub mod shrink;
pub mod store;

pub use campaign::{merge_outcomes, Campaign, ChunkControl, GridBuilder};
pub use counterexample::{Counterexample, CE_SCHEMA};
pub use fuzz::{
    features, CorpusEntry, CoverageMap, Finding, FuzzConfig, FuzzInput, FuzzReport, FuzzSession,
};
pub use invariant::{InvariantChecker, InvariantViolation};
pub use scenario::{
    policy_from_spec, AdversarialOutcome, AgreementScenarioOutcome, BgOutcome, CertifyTimely,
    FdAbi, FdDetector, FdOutcome, FleetReplayDrive, LeanOutcome, LeanStabilization, OutcomeData,
    Scenario, ScenarioOutcome, StopRule, WideFdOutcome, WideFdStabilization, Workload,
};
pub use shrink::{ShrinkReport, Shrinker};
pub use store::{OutcomeStore, StoreEntry, StoreError};

// Re-exported so campaign definitions need only this crate.
pub use st_sched::{GeneratorSpec, TimeoutPolicySpec};
