//! The incremental (`st-serve`) drive holds the same bar as the batch
//! drives: `run_chunked` must record a store byte-identical to
//! `run_resumed`'s for every chunk size and worker count, an early-stopped
//! run resumed from its own checkpoint must complete to the same bytes,
//! and `from_ranked` must reconstruct a campaign exactly from its wire
//! representation.

use std::sync::OnceLock;

use st_campaign::{
    Campaign, ChunkControl, FdAbi, FdDetector, OutcomeStore, ScenarioOutcome, Workload,
};
use st_core::{ProcSet, ProcessId, Universe};
use st_fd::TimeoutPolicy;
use st_sched::{CrashPlan, GeneratorSpec};

const KEY: &str = "served";

/// A 12-scenario mixed grid: two generator families × crash/no-crash ×
/// three seeds, FD workload.
fn grid() -> Campaign {
    let universe = Universe::new(4).unwrap();
    let p = ProcSet::from_indices([0]);
    let q = ProcSet::from_indices([0, 1, 2]);
    Campaign::grid(universe)
        .generators([
            GeneratorSpec::set_timely(p, q, 6, GeneratorSpec::seeded_random(0)),
            GeneratorSpec::RotatingStarvation { k: 1, base: 8 },
        ])
        .crash_plans([
            CrashPlan::new(),
            CrashPlan::new().crash(ProcessId::new(3), 2_000),
        ])
        .seeds([21, 22, 23])
        .workload(Workload::FdConvergence {
            k: 1,
            t: 2,
            policy: TimeoutPolicy::Increment,
            abi: FdAbi::MachineSlot,
            detector: FdDetector::SetBased,
            certify_membership: false,
        })
        .budget(8_000)
        .build()
}

/// Campaign, uninterrupted outcomes, and the store `run_resumed` records —
/// the reference every chunked variant must reproduce byte-for-byte.
fn reference() -> &'static (Campaign, Vec<ScenarioOutcome>, OutcomeStore) {
    static REF: OnceLock<(Campaign, Vec<ScenarioOutcome>, OutcomeStore)> = OnceLock::new();
    REF.get_or_init(|| {
        let campaign = grid();
        assert_eq!(campaign.len(), 12, "the grid shape");
        let mut store = OutcomeStore::new();
        let outcomes = campaign.run_resumed(4, KEY, None, Some(&mut store));
        (campaign, outcomes, store)
    })
}

fn as_bytes(outcomes: &[ScenarioOutcome]) -> Vec<u8> {
    format!("{outcomes:#?}").into_bytes()
}

#[test]
fn chunked_store_is_byte_identical_for_every_chunk_size_and_worker_count() {
    let (campaign, full_outcomes, full_store) = reference();
    for chunk in [1usize, 3, 5, 12, 100] {
        for workers in [1usize, 4] {
            let mut record = OutcomeStore::new();
            let mut calls = 0usize;
            let (outcomes, finished) = campaign.run_chunked(
                workers,
                KEY,
                None,
                &mut record,
                chunk,
                |store, completed, total| {
                    calls += 1;
                    // Every checkpoint is a complete store of the work so
                    // far — a valid resume point.
                    assert_eq!(store.len(), completed);
                    assert_eq!(total, campaign.len());
                    ChunkControl::Continue
                },
            );
            assert!(finished, "chunk={chunk} workers={workers}");
            assert_eq!(calls, campaign.len().div_ceil(chunk));
            assert_eq!(as_bytes(&outcomes), as_bytes(full_outcomes));
            assert_eq!(
                record.to_json_string(),
                full_store.to_json_string(),
                "store bytes diverged at chunk={chunk} workers={workers}"
            );
        }
    }
}

#[test]
fn stopped_then_resumed_completes_to_identical_bytes() {
    let (campaign, full_outcomes, full_store) = reference();
    for stop_after in [1usize, 2, 3] {
        // Phase 1: the "daemon" is killed after `stop_after` chunks of 4.
        let mut checkpoint = OutcomeStore::new();
        let mut calls = 0usize;
        let (_, finished) = campaign.run_chunked(2, KEY, None, &mut checkpoint, 4, |_, _, _| {
            calls += 1;
            if calls >= stop_after {
                ChunkControl::Stop
            } else {
                ChunkControl::Continue
            }
        });
        assert_eq!(finished, stop_after >= 3, "12 scenarios / chunks of 4");
        assert_eq!(checkpoint.len(), stop_after * 4);

        // The checkpoint round-trips through its disk bytes, like a real
        // restart.
        let reloaded = OutcomeStore::from_json_str(&checkpoint.to_json_string()).unwrap();

        // Phase 2: a fresh run (different workers, different chunk size)
        // resumes from the checkpoint and completes.
        let mut record = OutcomeStore::new();
        let (outcomes, finished) =
            campaign.run_chunked(1, KEY, Some(&reloaded), &mut record, 5, |_, _, _| {
                ChunkControl::Continue
            });
        assert!(finished);
        assert_eq!(as_bytes(&outcomes), as_bytes(full_outcomes));
        assert_eq!(
            record.to_json_string(),
            full_store.to_json_string(),
            "kill-after-{stop_after}-chunks + resume diverged from the uninterrupted run"
        );
    }
}

#[test]
fn fully_reused_campaign_still_checkpoints_once() {
    let (campaign, full_outcomes, full_store) = reference();
    let mut record = OutcomeStore::new();
    let mut calls = 0usize;
    let (outcomes, finished) = campaign.run_chunked(
        4,
        KEY,
        Some(full_store),
        &mut record,
        3,
        |store, completed, total| {
            calls += 1;
            assert_eq!((completed, total), (campaign.len(), campaign.len()));
            assert_eq!(store.len(), campaign.len());
            ChunkControl::Continue
        },
    );
    assert!(finished);
    assert_eq!(
        calls, 1,
        "one observer call so the caller persists the store"
    );
    assert_eq!(as_bytes(&outcomes), as_bytes(full_outcomes));
    assert_eq!(record.to_json_string(), full_store.to_json_string());
}

#[test]
fn from_ranked_reconstructs_a_campaign_exactly() {
    let (campaign, _, _) = reference();
    let mut pruned = campaign.clone();
    pruned.retain(|rank, _| rank % 3 != 1); // gaps in the rank sequence
    let rebuilt = Campaign::from_ranked(
        pruned
            .ranks()
            .iter()
            .copied()
            .zip(pruned.scenarios().iter().cloned()),
    )
    .unwrap();
    assert_eq!(rebuilt.ranks(), pruned.ranks());
    assert_eq!(
        as_bytes(&rebuilt.run_parallel(2)),
        as_bytes(&pruned.run_parallel(2)),
        "a wire-reconstructed campaign runs identically"
    );
}

#[test]
fn from_ranked_rejects_non_increasing_ranks() {
    let (campaign, _, _) = reference();
    let s = campaign.scenarios()[0].clone();
    let err = Campaign::from_ranked([(3, s.clone()), (3, s)]).unwrap_err();
    assert!(err.contains("strictly increasing"), "{err}");
}
