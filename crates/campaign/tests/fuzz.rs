//! End-to-end fuzzer + shrinker acceptance tests.
//!
//! The shape mirrors the `stlab` scenario catalog (n = 5, Π = ({0,1},
//! {0,1,2}), bound 6): the fuzzer starts from *clean* conforming seeds and
//! must rediscover the starved-fixture class of violation — a set-timely
//! guarantee whose schedule starves a correct process — purely by
//! mutation, then the shrinker must grind the counterexample down to a
//! pinned size while preserving the violation kind.

use proptest::prelude::*;
use st_campaign::{
    Counterexample, FdAbi, FdDetector, FuzzConfig, FuzzInput, FuzzSession, Scenario, Shrinker,
    Workload,
};
use st_core::{ProcSet, Schedule, Universe};
use st_fd::TimeoutPolicy;
use st_sched::{GeneratorSpec, SpecMutator, SpecRng};

const N: usize = 5;
const BOUND: usize = 6;

/// Pinned by the seed-scan below: with this master seed the session finds
/// a violation within the 64-scenario budget.
const MASTER_SEED: u64 = 3;

fn universe() -> Universe {
    Universe::new(N).unwrap()
}

fn p() -> ProcSet {
    ProcSet::from_indices([0, 1])
}

fn q() -> ProcSet {
    ProcSet::from_indices([0, 1, 2])
}

fn conforming() -> GeneratorSpec {
    GeneratorSpec::set_timely(p(), q(), BOUND, GeneratorSpec::seeded_random(0))
}

fn agreement_workload() -> Workload {
    Workload::Agreement {
        t: 2,
        k: 2,
        inputs: (0..N as st_core::Value).map(|v| 1000 + 7 * v).collect(),
        policy: TimeoutPolicy::Increment,
        certify: None,
    }
}

fn fd_workload() -> Workload {
    Workload::FdConvergence {
        k: 2,
        t: 2,
        policy: TimeoutPolicy::Increment,
        abi: FdAbi::MachineSlot,
        detector: FdDetector::SetBased,
        certify_membership: false,
    }
}

fn catalog_config(master_seed: u64) -> FuzzConfig {
    FuzzConfig {
        key: "fuzz-e2e".into(),
        universe: universe(),
        workloads: vec![agreement_workload(), fd_workload()],
        seeds: vec![
            FuzzInput {
                spec: conforming(),
                workload: 0,
                seed: 0xE1AC_5EED,
            },
            FuzzInput {
                spec: conforming(),
                workload: 1,
                seed: 0xE1AC_5EED,
            },
        ],
        master_seed,
        budget: 64,
        batch: 8,
        step_budget: 8_000,
        threads: 2,
        stop_on_finding: true,
    }
}

/// The starved fixture from the `stlab` catalog: termination owed, a
/// 40-step budget forbids it.
fn starved_fixture() -> Scenario {
    Scenario::new(
        "starved-fixture/agreement",
        universe(),
        conforming(),
        agreement_workload(),
        40,
        0xE1AC_5EED,
    )
}

/// Seed-scan helper (run with `--ignored --nocapture` to re-pin
/// [`MASTER_SEED`] after changing the mutator or the feature map).
#[test]
#[ignore = "seed-scan helper, not a regression test"]
fn scan_master_seeds() {
    for seed in 0..32u64 {
        let report = FuzzSession::new(catalog_config(seed)).run(None, None);
        let kinds: Vec<_> = report
            .findings
            .iter()
            .flat_map(|f| f.outcome.violations.iter().map(|v| v.kind()))
            .collect();
        println!(
            "master_seed {seed}: executed {}, rounds {}, findings {:?}",
            report.executed, report.rounds, kinds
        );
    }
}

/// Acceptance: from clean seeds, the fuzzer finds a violation of the
/// starved-fixture class (termination owed, schedule starves a correct
/// process) within a bounded budget — without it being in the corpus.
#[test]
fn fuzzer_finds_starvation_from_clean_seeds() {
    let cfg = catalog_config(MASTER_SEED);
    // The seeds really are clean: run them standalone first.
    let session = FuzzSession::new(cfg.clone());
    let report = session.run(None, None);
    let seed_ranks: Vec<usize> = (0..cfg.seeds.len()).collect();
    for f in &report.findings {
        assert!(
            !seed_ranks.contains(&f.rank),
            "a seed input itself violated — the finding was not found, it was given"
        );
    }
    assert!(
        report.findings.iter().any(|f| f
            .outcome
            .violations
            .iter()
            .any(|v| v.kind() == "Termination")),
        "expected a Termination finding within budget {}; got {:?}",
        cfg.budget,
        report
            .findings
            .iter()
            .flat_map(|f| f.outcome.violations.iter().map(|v| v.kind()))
            .collect::<Vec<_>>()
    );
}

/// Acceptance: the shrinker reduces the starved fixture's 40-step
/// counterexample by at least 5× (pinned: ≤ 8 steps) while preserving the
/// Termination kind.
#[test]
fn shrinker_minimizes_the_starved_fixture() {
    let scenario = starved_fixture();
    let outcome = scenario.run();
    assert!(
        outcome.violations.iter().any(|v| v.kind() == "Termination"),
        "fixture must violate Termination"
    );
    let report = Shrinker::new().shrink(&scenario, &outcome).unwrap();
    assert_eq!(report.kind, "Termination");
    assert_eq!(report.original_len, 40);
    assert!(
        report.shrunk_len <= 8,
        "pinned shrink target missed: {} steps",
        report.shrunk_len
    );
    assert!(report.original_len >= 5 * report.shrunk_len.max(1) || report.shrunk_len == 0);
    assert!(report
        .outcome
        .violations
        .iter()
        .any(|v| v.kind() == "Termination"));
}

/// Schedule-level ddmin: a replayed schedule that breaks the Π = (p, q)
/// bound shrinks to the minimal witness — exactly `bound` q-steps in a
/// p-free run — and every accepted intermediate still violates the same
/// kind.
#[test]
fn ddmin_reduces_guarantee_broken_to_minimal_witness() {
    // 20 consecutive steps of process 2 (in q, not in p): observed bound
    // 21 > 6.
    let bad = Schedule::from_indices(std::iter::repeat_n(2usize, 20));
    let scenario = Scenario::new(
        "guarantee-broken/replay",
        universe(),
        GeneratorSpec::replay(conforming(), bad),
        fd_workload(),
        20,
        0,
    );
    let outcome = scenario.run();
    assert!(
        outcome
            .violations
            .iter()
            .any(|v| v.kind() == "GuaranteeBroken"),
        "replayed schedule must break the guarantee; got {:?}",
        outcome.violations
    );
    let report = Shrinker::new().shrink(&scenario, &outcome).unwrap();
    assert_eq!(report.kind, "GuaranteeBroken");
    assert_eq!(
        report.shrunk_len, BOUND,
        "minimal witness is exactly `bound` p-free q-steps"
    );
    assert!(report.schedule_steps > 0, "the schedule phase must engage");
    for accepted in &report.accepted {
        assert!(
            accepted
                .run()
                .violations
                .iter()
                .any(|v| v.kind() == "GuaranteeBroken"),
            "accepted candidate lost the violation: {}",
            accepted.label
        );
    }
}

/// A found counterexample survives the full persistence loop: save to
/// canonical JSON, reload, replay under the checker, reproduce the kind.
#[test]
fn counterexample_round_trips_and_reproduces() {
    let scenario = starved_fixture();
    let outcome = scenario.run();
    let ce = Counterexample::new(scenario, outcome).unwrap();
    let text = ce.to_json_string();
    let reloaded = Counterexample::from_json_str(&text).unwrap();
    assert_eq!(reloaded.to_json_string(), text, "canonical round trip");
    let (_, reproduced) = reloaded.replay();
    assert!(reproduced, "replay must reproduce the violation kinds");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Satellite: the outcome-store codec round-trips *arbitrary*
    /// fault-decorator spec trees — the mutator's generator doubling as
    /// the proptest strategy.
    #[test]
    fn codec_round_trips_arbitrary_spec_trees(seed in any::<u64>()) {
        let mutator = SpecMutator::new(universe());
        let mut rng = SpecRng::new(seed);
        let spec = mutator.arbitrary(&mut rng, 3);
        let scenario = Scenario::new(
            "roundtrip",
            universe(),
            spec,
            agreement_workload(),
            1_000,
            seed,
        );
        let encoded = st_campaign::store::encode_scenario(&scenario).to_string();
        let parsed = st_core::Json::parse(&encoded).unwrap();
        let decoded = st_campaign::store::decode_scenario(&parsed).unwrap();
        let re_encoded = st_campaign::store::encode_scenario(&decoded).to_string();
        prop_assert_eq!(encoded, re_encoded);
    }

    /// Satellite: every shrinker-accepted candidate still violates the
    /// original kind — over *random* starved scenarios (arbitrary filler
    /// under a set-timely root, budget too small to decide).
    #[test]
    fn shrink_acceptance_preserves_the_violation_kind(seed in any::<u64>()) {
        let mutator = SpecMutator::new(universe());
        let mut rng = SpecRng::new(seed);
        let filler = mutator.arbitrary(&mut rng, 1);
        let spec = GeneratorSpec::set_timely(p(), q(), BOUND, filler);
        let scenario = Scenario::new(
            "prop-starved",
            universe(),
            spec,
            agreement_workload(),
            30 + (seed % 30),
            seed,
        );
        let outcome = scenario.run();
        // Not every random filler starves within the budget; only shrink
        // the ones that violate.
        if let Some(report) = Shrinker::with_max_runs(256).shrink(&scenario, &outcome) {
            let kind = report.kind;
            prop_assert!(report.shrunk_len <= report.original_len);
            for accepted in &report.accepted {
                prop_assert!(
                    accepted.run().violations.iter().any(|v| v.kind() == kind),
                    "accepted candidate lost kind {}", kind
                );
            }
        }
    }
}
