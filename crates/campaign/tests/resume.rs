//! The persistence/resume guarantee, differentially and property-tested:
//! a sweep that is interrupted (store truncated at any point), filtered
//! ([`Campaign::retain`]), or partitioned arbitrarily and then resumed
//! must reassemble **byte-identical** outcome lists — and byte-identical
//! re-recorded store files — compared to an uninterrupted run, at 1 / 4 /
//! oversubscribed workers.

use std::sync::OnceLock;

use proptest::prelude::*;
use st_campaign::{
    merge_outcomes, Campaign, FdAbi, FdDetector, OutcomeStore, ScenarioOutcome, Workload,
};
use st_core::{ProcSet, ProcessId, Universe};
use st_fd::TimeoutPolicy;
use st_sched::{CrashPlan, GeneratorSpec};

const KEY: &str = "grid";

/// The same mixed 64-scenario grid as `tests/determinism.rs`: four
/// generator families × crash/no-crash × four seeds × two workloads.
fn mixed_campaign() -> Campaign {
    let n = 4;
    let universe = Universe::new(n).unwrap();
    let p = ProcSet::from_indices([0]);
    let q = ProcSet::from_indices([0, 1, 2]);
    let generators = [
        GeneratorSpec::set_timely(p, q, 6, GeneratorSpec::seeded_random(0)),
        GeneratorSpec::GeneralizedFigure1 {
            p: ProcSet::from_indices([0, 1]),
            q: ProcSet::from_indices([2, 3]),
        },
        GeneratorSpec::AlternatingRotation {
            groups: vec![ProcSet::from_indices([0, 1]), ProcSet::from_indices([2, 3])],
            base: 8,
        },
        GeneratorSpec::RotatingStarvation { k: 1, base: 8 },
    ];
    let crash_axis = [
        CrashPlan::new(),
        CrashPlan::new().crash(ProcessId::new(3), 2_000),
    ];
    let workloads = [
        Workload::FdConvergence {
            k: 1,
            t: 2,
            policy: TimeoutPolicy::Increment,
            abi: FdAbi::MachineSlot,
            detector: FdDetector::SetBased,
            certify_membership: true,
        },
        Workload::Agreement {
            t: 2,
            k: 1,
            inputs: (0..n as st_core::Value).map(|v| 100 + v).collect(),
            policy: TimeoutPolicy::Increment,
            certify: None,
        },
    ];
    Campaign::grid(universe)
        .generators(generators)
        .crash_plans(crash_axis)
        .seeds([11, 12, 13, 14])
        .workloads(workloads)
        .budget(20_000)
        .build()
}

/// The uninterrupted reference: campaign, its outcomes, and the store an
/// uninterrupted recording run writes. Computed once for all tests.
fn reference() -> &'static (Campaign, Vec<ScenarioOutcome>, OutcomeStore) {
    static REF: OnceLock<(Campaign, Vec<ScenarioOutcome>, OutcomeStore)> = OnceLock::new();
    REF.get_or_init(|| {
        let campaign = mixed_campaign();
        assert_eq!(campaign.len(), 64, "the mixed grid shape");
        let mut store = OutcomeStore::new();
        let outcomes = campaign.run_resumed(4, KEY, None, Some(&mut store));
        assert_eq!(store.len(), 64);
        (campaign, outcomes, store)
    })
}

fn as_bytes(outcomes: &[ScenarioOutcome]) -> Vec<u8> {
    // Byte identity, not just `Eq`: the debug rendering covers every field.
    format!("{outcomes:#?}").into_bytes()
}

/// An interrupted sweep — the store truncated after `cut` outcomes — then
/// resumed at several worker counts: outcome list and rewritten store are
/// byte-identical to the uninterrupted run's.
#[test]
fn interrupted_then_resumed_is_byte_identical() {
    let (campaign, full_outcomes, full_store) = reference();
    for cut in [0usize, 1, 17, 32, 63, 64] {
        let mut truncated = full_store.clone();
        truncated.retain(|idx, _| idx < cut);
        for workers in [1usize, 4, 33] {
            let mut rerecorded = OutcomeStore::new();
            let resumed =
                campaign.run_resumed(workers, KEY, Some(&truncated), Some(&mut rerecorded));
            assert_eq!(
                as_bytes(&resumed),
                as_bytes(full_outcomes),
                "outcomes diverged at cut={cut} workers={workers}"
            );
            assert_eq!(
                rerecorded.to_json_string(),
                full_store.to_json_string(),
                "store bytes diverged at cut={cut} workers={workers}"
            );
        }
    }
}

/// A store round trip through disk bytes resumes exactly like the
/// in-memory store it was written from.
#[test]
fn resuming_from_reparsed_bytes_matches() {
    let (campaign, full_outcomes, full_store) = reference();
    let reloaded = OutcomeStore::from_json_str(&full_store.to_json_string()).unwrap();
    let resumed = campaign.run_resumed(4, KEY, Some(&reloaded), None);
    assert_eq!(as_bytes(&resumed), as_bytes(full_outcomes));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// `retain` + `skip_completed` over a *random* partition of the grid
    /// (bit `r` of the mask decides rank `r`'s side) reassemble the exact
    /// full-run outcome list, at 1/4/oversubscribed workers.
    #[test]
    fn random_partitions_reassemble_the_full_run(mask in any::<u64>()) {
        let (campaign, full_outcomes, full_store) = reference();
        let full_bytes = as_bytes(full_outcomes);

        // Half A resumed from the store, half B run fresh, every worker mix.
        let mut partial = full_store.clone();
        partial.retain(|_, e| (mask >> e.rank) & 1 == 1);
        for workers in [1usize, 4, 33] {
            let mut pending = campaign.clone();
            let reused = pending.skip_completed(&partial, KEY);
            prop_assert_eq!(reused.len(), mask.count_ones() as usize);
            prop_assert_eq!(pending.len(), 64 - reused.len());
            let fresh = pending.run_parallel(workers);
            let merged = merge_outcomes(reused, fresh);
            prop_assert_eq!(&as_bytes(&merged), &full_bytes, "workers = {}", workers);
        }

        // Both halves executed as retained sub-campaigns (no store at all),
        // at different worker counts, merged by rank.
        let mut half_a = campaign.clone();
        half_a.retain(|rank, _| (mask >> rank) & 1 == 1);
        let mut half_b = campaign.clone();
        half_b.retain(|rank, _| (mask >> rank) & 1 == 0);
        prop_assert_eq!(half_a.len() + half_b.len(), 64);
        let merged = merge_outcomes(half_a.run_parallel(4), half_b.run_parallel(33));
        prop_assert_eq!(&as_bytes(&merged), &full_bytes);
    }
}
