//! The campaign engine's determinism guarantee, differentially tested:
//! `run_parallel(1)`, `run_parallel(4)`, and an oversubscribed worker pool
//! must produce **byte-identical ordered outcome lists** on a mixed grid —
//! four generator families × crash/no-crash × four seeds × two workloads.

use st_campaign::{Campaign, FdAbi, FdDetector, ScenarioOutcome, Workload};
use st_core::{ProcSet, ProcessId, Universe};
use st_fd::TimeoutPolicy;
use st_sched::{CrashPlan, GeneratorSpec};

fn mixed_campaign() -> Campaign {
    let n = 4;
    let universe = Universe::new(n).unwrap();
    let p = ProcSet::from_indices([0]);
    let q = ProcSet::from_indices([0, 1, 2]);
    // Four distinct generator families, conforming and adversarial.
    let generators = [
        GeneratorSpec::set_timely(p, q, 6, GeneratorSpec::seeded_random(0)),
        GeneratorSpec::GeneralizedFigure1 {
            p: ProcSet::from_indices([0, 1]),
            q: ProcSet::from_indices([2, 3]),
        },
        GeneratorSpec::AlternatingRotation {
            groups: vec![ProcSet::from_indices([0, 1]), ProcSet::from_indices([2, 3])],
            base: 8,
        },
        GeneratorSpec::RotatingStarvation { k: 1, base: 8 },
    ];
    // Crash axis: no crash, and p3 crashing mid-run (keeps the SetTimely
    // witness set alive).
    let crash_axis = [
        CrashPlan::new(),
        CrashPlan::new().crash(ProcessId::new(3), 2_000),
    ];
    let workloads = [
        Workload::FdConvergence {
            k: 1,
            t: 2,
            policy: TimeoutPolicy::Increment,
            abi: FdAbi::MachineSlot,
            detector: FdDetector::SetBased,
            certify_membership: true,
        },
        Workload::Agreement {
            t: 2,
            k: 1,
            inputs: (0..n as st_core::Value).map(|v| 100 + v).collect(),
            policy: TimeoutPolicy::Increment,
            certify: None,
        },
    ];
    Campaign::grid(universe)
        .generators(generators)
        .crash_plans(crash_axis)
        .seeds([11, 12, 13, 14])
        .workloads(workloads)
        .budget(20_000)
        .build()
}

fn as_bytes(outcomes: &[ScenarioOutcome]) -> Vec<u8> {
    // Byte identity, not just `Eq`: the debug rendering covers every field.
    format!("{outcomes:#?}").into_bytes()
}

#[test]
fn thread_count_never_changes_outcomes() {
    let campaign = mixed_campaign();
    assert_eq!(campaign.len(), 4 * 2 * 4 * 2, "the mixed grid shape");

    let sequential = campaign.run_parallel(1);
    assert_eq!(sequential.len(), campaign.len());
    for (rank, out) in sequential.iter().enumerate() {
        assert_eq!(out.rank, rank, "outcomes sorted by rank");
    }

    let four = campaign.run_parallel(4);
    // Far more workers than scenarios per core: the stealing tail path.
    let oversubscribed = campaign.run_parallel(33);

    assert_eq!(sequential, four, "4 workers diverged from sequential");
    assert_eq!(sequential, oversubscribed, "oversubscription diverged");
    assert_eq!(as_bytes(&sequential), as_bytes(&four));
    assert_eq!(as_bytes(&sequential), as_bytes(&oversubscribed));

    // And the explicit sequential reference is the same list again.
    assert_eq!(campaign.run_sequential(), sequential);
}

#[test]
fn repeated_runs_are_reproducible() {
    let campaign = mixed_campaign();
    let a = campaign.run_parallel(4);
    let b = campaign.run_parallel(4);
    assert_eq!(as_bytes(&a), as_bytes(&b));
}

/// The fault-injection decorators ride the same guarantee: a grid over all
/// four decorator families must be byte-identical at 1, 4, and an
/// oversubscribed worker count, and violation-free on conforming scenarios.
fn fault_campaign() -> Campaign {
    let n = 4;
    let universe = Universe::new(n).unwrap();
    let p = ProcSet::from_indices([0]);
    let q = ProcSet::from_indices([0, 1, 2]);
    let base = || GeneratorSpec::set_timely(p, q, 6, GeneratorSpec::seeded_random(0));
    let generators = [
        GeneratorSpec::flapping(p, q, 6, GeneratorSpec::seeded_random(0), (40, 80), (20, 40)),
        GeneratorSpec::gray_failure(base(), ProcSet::from_indices([3]), 4),
        GeneratorSpec::burst_clog(base(), ProcessId::new(3), 25, (60, 120)),
        GeneratorSpec::crash_recovery(base(), ProcessId::new(3), 1_000, 3_000),
    ];
    let workloads = [
        Workload::FdConvergence {
            k: 1,
            t: 2,
            policy: TimeoutPolicy::Increment,
            abi: FdAbi::MachineSlot,
            detector: FdDetector::SetBased,
            certify_membership: false,
        },
        Workload::Agreement {
            t: 2,
            k: 1,
            inputs: (0..n as st_core::Value).map(|v| 100 + v).collect(),
            policy: TimeoutPolicy::Increment,
            certify: None,
        },
    ];
    Campaign::grid(universe)
        .generators(generators)
        .seeds([21, 22, 23])
        .workloads(workloads)
        .budget(20_000)
        .build()
}

#[test]
fn fault_decorators_are_worker_count_independent() {
    let campaign = fault_campaign();
    assert_eq!(campaign.len(), 4 * 3 * 2, "the fault grid shape");

    let sequential = campaign.run_parallel(1);
    let four = campaign.run_parallel(4);
    let oversubscribed = campaign.run_parallel(33);

    assert_eq!(as_bytes(&sequential), as_bytes(&four));
    assert_eq!(as_bytes(&sequential), as_bytes(&oversubscribed));

    // The decorators stress schedules but never forge evidence: no scenario
    // in this grid trips the always-on checker.
    for out in &sequential {
        assert!(
            out.violations.is_empty(),
            "unexpected violation in {}: {:?}",
            out.label,
            out.violations
        );
        assert!(out.counterexample.is_none());
    }
}

/// Large-n grids ride the same guarantee: lean workloads at n = 256 —
/// beyond `PROCSET_CAPACITY`, so the O(n)-state detector/consensus stack —
/// across both fleet-replay drives must be byte-identical at 1, 4, and an
/// oversubscribed worker count. Budgets are far below stabilization scale
/// (determinism needs no convergence), so this stays test-suite cheap.
fn large_n_campaign() -> Campaign {
    use st_campaign::FleetReplayDrive;
    let n = 256;
    let universe = Universe::new(n).unwrap();
    let burst = (n * n + n + 2) as u64;
    let mut campaign = Campaign::new();
    for seed in [31, 32] {
        for drive in [
            FleetReplayDrive::Plain,
            FleetReplayDrive::Soa { slice_len: 64 },
        ] {
            for (tag, workload) in [
                (
                    "convergence",
                    Workload::LeanConvergence {
                        t: 8,
                        policy: TimeoutPolicy::Increment,
                        drive,
                    },
                ),
                (
                    "agreement",
                    Workload::LeanAgreement {
                        t: 8,
                        policy: TimeoutPolicy::Increment,
                        drive,
                    },
                ),
            ] {
                campaign.push(st_campaign::Scenario::new(
                    format!("n256/{tag}/{drive:?}/seed{seed}"),
                    universe,
                    GeneratorSpec::Bursty { burst },
                    workload,
                    400_000,
                    seed,
                ));
            }
        }
    }
    campaign
}

/// The *paper's* detector at large n rides the same guarantee: wide-FD
/// workloads at n = 128 (two-word `WideProcSet` universes) across both
/// fleet-replay drives must be byte-identical at 1, 4, and an
/// oversubscribed worker count, and must round-trip through the outcome
/// store byte-identically. Budgets stay below stabilization scale.
fn wide_fd_campaign() -> Campaign {
    use st_campaign::FleetReplayDrive;
    let n = 128;
    let universe = Universe::new(n).unwrap();
    let burst = (n * n + n + 2) as u64;
    let mut campaign = Campaign::new();
    for seed in [41, 42] {
        for drive in [
            FleetReplayDrive::Plain,
            FleetReplayDrive::Soa { slice_len: 64 },
        ] {
            campaign.push(st_campaign::Scenario::new(
                format!("n128/wide-fd/{drive:?}/seed{seed}"),
                universe,
                GeneratorSpec::Bursty { burst },
                Workload::WideFdConvergence {
                    k: 1,
                    t: 8,
                    policy: TimeoutPolicy::Increment,
                    drive,
                },
                60_000,
                seed,
            ));
        }
    }
    campaign
}

#[test]
fn wide_fd_grid_is_worker_count_independent() {
    let campaign = wide_fd_campaign();
    assert_eq!(campaign.len(), 2 * 2, "the wide-fd grid shape");

    let sequential = campaign.run_parallel(1);
    let four = campaign.run_parallel(4);
    let oversubscribed = campaign.run_parallel(33);

    assert_eq!(as_bytes(&sequential), as_bytes(&four));
    assert_eq!(as_bytes(&sequential), as_bytes(&oversubscribed));

    for out in &sequential {
        assert!(
            out.violations.is_empty(),
            "unexpected violation in {}: {:?}",
            out.label,
            out.violations
        );
    }

    // Store round-trip: the WideFd codec arms reproduce the outcomes
    // byte-for-byte.
    let dir = std::env::temp_dir().join("st-campaign-wide-fd-determinism");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("outcomes.json");
    let key = "wide-fd-determinism";
    let mut store = st_campaign::OutcomeStore::new();
    for (scenario, out) in campaign.scenarios().iter().zip(&sequential) {
        store.record(key, scenario, out);
    }
    store.save(&path).unwrap();
    let loaded = st_campaign::OutcomeStore::load(&path).unwrap();
    let reloaded: Vec<ScenarioOutcome> = campaign
        .scenarios()
        .iter()
        .zip(&sequential)
        .map(|(scenario, out)| loaded.lookup(key, out.rank, scenario).unwrap())
        .collect();
    assert_eq!(as_bytes(&sequential), as_bytes(&reloaded));
    std::fs::remove_file(&path).ok();
}

#[test]
fn large_n_lean_grid_is_worker_count_independent() {
    let campaign = large_n_campaign();
    assert_eq!(campaign.len(), 2 * 2 * 2, "the large-n grid shape");

    let sequential = campaign.run_parallel(1);
    let four = campaign.run_parallel(4);
    let oversubscribed = campaign.run_parallel(33);

    assert_eq!(as_bytes(&sequential), as_bytes(&four));
    assert_eq!(as_bytes(&sequential), as_bytes(&oversubscribed));

    for out in &sequential {
        assert!(
            out.violations.is_empty(),
            "unexpected violation in {}: {:?}",
            out.label,
            out.violations
        );
    }
}
