//! The always-on invariant checker, exercised end to end: a scenario whose
//! generator owes termination but whose budget forbids it must record a
//! typed violation plus a replayable counterexample schedule, the store
//! codec must round-trip every violation kind byte-identically, and the
//! unchecked fast path must stay violation-free by construction.

use st_campaign::store::{decode_outcome, encode_outcome};
use st_campaign::{Campaign, InvariantViolation, Scenario, Workload};
use st_core::{ProcSet, Schedule, Universe, Value};
use st_fd::TimeoutPolicy;
use st_sched::GeneratorSpec;

/// An agreement scenario whose root `SetTimely` generator guarantees
/// solvability (so termination is owed) but whose step budget is far too
/// small for the stack to decide: the checker must fire.
fn starved_scenario() -> Scenario {
    let n = 4;
    let universe = Universe::new(n).unwrap();
    let p = ProcSet::from_indices([0]);
    let q = ProcSet::from_indices([0, 1, 2]);
    Scenario::new(
        "fixture/starved",
        universe,
        GeneratorSpec::set_timely(p, q, 6, GeneratorSpec::seeded_random(0)),
        Workload::Agreement {
            t: 2,
            k: 1,
            inputs: (0..n as Value).map(|v| 100 + v).collect(),
            policy: TimeoutPolicy::Increment,
            certify: None,
        },
        40, // far below any decision point
        7,
    )
}

#[test]
fn starved_guarantee_records_termination_violation_and_counterexample() {
    let out = starved_scenario().run();
    assert!(
        out.violations
            .iter()
            .any(|v| matches!(v, InvariantViolation::Termination { .. })),
        "expected a Termination violation, got {:?}",
        out.violations
    );
    let counterexample = out
        .counterexample
        .as_ref()
        .expect("violations must pin the executed schedule");
    // The counterexample is the replayable executed schedule: within the
    // universe and exactly as long as the run.
    assert!(counterexample.is_within(Universe::new(4).unwrap()));
    assert!(!counterexample.is_empty() && counterexample.len() as u64 <= 40);
}

#[test]
fn unchecked_fast_path_never_reports() {
    let checked = starved_scenario().run();
    let unchecked = starved_scenario().run_unchecked();
    assert!(unchecked.violations.is_empty());
    assert!(unchecked.counterexample.is_none());
    // Outcome data itself is identical — the checker observes, never steers.
    assert_eq!(checked.data, unchecked.data);
}

#[test]
fn generous_budget_clears_the_same_scenario() {
    let mut scenario = starved_scenario();
    scenario.budget = 200_000;
    let out = scenario.run();
    assert!(
        out.violations.is_empty(),
        "conforming run should be clean: {:?}",
        out.violations
    );
    assert!(out.counterexample.is_none());
}

#[test]
fn campaign_outcomes_carry_violations() {
    // The same fixture through the parallel engine: violations survive the
    // rank-ordered merge.
    let campaign = Campaign::from_scenarios(vec![starved_scenario()]);
    let outcomes = campaign.run_parallel(4);
    assert_eq!(outcomes.len(), 1);
    assert!(!outcomes[0].violations.is_empty());
    assert!(outcomes[0].counterexample.is_some());
}

#[test]
fn every_violation_kind_round_trips_through_the_store_codec() {
    // Start from a real outcome, then splice in one violation of each kind
    // and a counterexample schedule; the codec must reproduce all of them.
    let mut out = starved_scenario().run();
    out.violations = vec![
        InvariantViolation::KAgreement {
            values: vec![1, 2, 3],
            k: 2,
        },
        InvariantViolation::Validity {
            process: 1,
            value: 99,
        },
        InvariantViolation::Termination {
            undecided: vec![0, 2],
        },
        InvariantViolation::BallotOwnership {
            instance: 1,
            process: 2,
            mbal: 7,
            bal: 11,
        },
        InvariantViolation::AccusedTimelyWinnerset {
            winnerset: ProcSet::from_indices([1, 3]),
        },
        InvariantViolation::GuaranteeBroken {
            p: ProcSet::from_indices([0]),
            q: ProcSet::from_indices([0, 1]),
            bound: 4,
            observed: 9,
        },
        InvariantViolation::CrashWindowResurrection {
            process: 3,
            position: 1_234,
        },
    ];
    out.counterexample = Some(Schedule::from_indices([0, 1, 2, 3, 0, 1]));
    let decoded = decode_outcome(&encode_outcome(&out)).expect("decode");
    assert_eq!(out, decoded);
    // And byte-identically: re-encoding the decoded outcome is a fixpoint.
    assert_eq!(
        encode_outcome(&out).to_string(),
        encode_outcome(&decoded).to_string()
    );
}
