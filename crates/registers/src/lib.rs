//! Classic shared-memory objects built from atomic registers.
//!
//! Substrate crate: the agreement protocols (`st-agreement`) and the BG
//! simulation (`st-bgsim`) are built from these three primitives, each
//! implemented from plain single-writer registers exactly as in the
//! read-write shared-memory literature:
//!
//! - [`Collect`] — store-collect (regular, non-atomic read of all
//!   components);
//! - [`Snapshot`] — atomic snapshot via double collect;
//! - [`AdoptCommit`] — Gafni's adopt-commit, the safety core of round-based
//!   agreement.
//!
//! All objects are `Clone` and stateless (state lives in shared registers):
//! clone one instance into each process task.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adopt_commit;
mod collect;
mod snapshot;

pub use adopt_commit::{AcOutcome, AdoptCommit};
pub use collect::Collect;
pub use snapshot::{ScanOutcome, Snapshot, VersionedCell};
