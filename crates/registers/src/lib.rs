//! Classic shared-memory objects built from atomic registers.
//!
//! Substrate crate: the agreement protocols (`st-agreement`) and the BG
//! simulation (`st-bgsim`) are built from these three primitives, each
//! implemented from plain single-writer registers exactly as in the
//! read-write shared-memory literature:
//!
//! - [`Collect`] — store-collect (regular, non-atomic read of all
//!   components);
//! - [`Snapshot`] — atomic snapshot via double collect;
//! - [`AdoptCommit`] — Gafni's adopt-commit, the safety core of round-based
//!   agreement.
//!
//! All objects are `Clone` and stateless (state lives in shared registers):
//! clone one instance into each process task.
//!
//! The primitives the agreement propose path builds on also ship as
//! **machine-ABI step cores** for protocols on the simulator's non-async
//! fast path ([`st_sim::Automaton`]): [`Collect::store_machine`] /
//! [`CollectScan`] (store-collect) and [`AcPropose`] (the adopt-commit
//! propose as a `2n + 2`-operation phase sequence). A step core performs
//! exactly one register operation per `step` call, so an automaton inlines
//! the object's step sequence without breaking the one-operation-per-step
//! discipline; each core is held operation-for-operation identical to its
//! async transcription by in-module differential tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adopt_commit;
mod collect;
mod snapshot;

pub use adopt_commit::{AcOutcome, AcPropose, AdoptCommit};
pub use collect::{Collect, CollectScan};
pub use snapshot::{ScanOutcome, Snapshot, VersionedCell};
