//! Store-collect: the simplest shared object over SWMR registers.
//!
//! Each process owns one register; `store` writes it (one step) and
//! `collect` reads all `n` registers one by one (`n` steps). A collect is
//! *not* atomic — it is the building block on which snapshots and
//! adopt-commit impose stronger semantics.

use st_core::ProcessId;
use st_sim::{ProcessCtx, Reg, RegValue, Sim, StepAccess};

/// A store-collect object: one `Option<T>` register per process.
///
/// Clone the object into each process's task; it is stateless (all state is
/// in shared registers).
#[derive(Clone, Debug)]
pub struct Collect<T> {
    regs: Vec<Reg<Option<T>>>,
}

impl<T: RegValue> Collect<T> {
    /// Allocates the object's registers in `sim` (one single-writer register
    /// per process, named `name[p]`).
    pub fn alloc(sim: &mut Sim, name: &str) -> Self {
        Collect {
            regs: sim.alloc_per_process(name, None),
        }
    }

    /// Number of component registers (= number of processes).
    pub fn width(&self) -> usize {
        self.regs.len()
    }

    /// Writes the calling process's component. **One step.**
    pub async fn store(&self, ctx: &ProcessCtx, value: T) {
        ctx.write(self.regs[ctx.pid().index()], Some(value)).await;
    }

    /// Reads all components in index order. **`n` steps.**
    pub async fn collect(&self, ctx: &ProcessCtx) -> Vec<Option<T>> {
        let mut out = Vec::with_capacity(self.regs.len());
        for &reg in &self.regs {
            out.push(ctx.read(reg).await);
        }
        out
    }

    /// Reads one component. **One step.**
    pub async fn read_one(&self, ctx: &ProcessCtx, p: ProcessId) -> Option<T> {
        ctx.read(self.regs[p.index()]).await
    }

    /// Writes the calling process's component on the machine ABI — the
    /// [`store`](Self::store) operation as one [`StepAccess`] write, for
    /// automata that inline the object's step sequence. **Costs the step's
    /// one operation.**
    pub fn store_machine(&self, mem: &mut StepAccess<'_>, value: T) {
        mem.write(self.regs[mem.pid().index()], Some(value));
    }

    /// Begins a machine-ABI collect: the `n`-read sequence of
    /// [`collect`](Self::collect) as a resumable step core (one component
    /// read per [`CollectScan::step`] call), for automata that inline the
    /// object's step sequence.
    pub fn scan(&self) -> CollectScan<T> {
        CollectScan {
            regs: self.regs.clone(),
            out: Vec::with_capacity(self.regs.len()),
        }
    }
}

/// A machine-ABI collect in progress: reads components in index order, one
/// per step — the state-machine port of [`Collect::collect`]. Obtain from
/// [`Collect::scan`]; reusable (the buffer resets when the scan completes).
#[derive(Clone, Debug)]
pub struct CollectScan<T> {
    regs: Vec<Reg<Option<T>>>,
    out: Vec<Option<T>>,
}

impl<T: RegValue> CollectScan<T> {
    /// Performs this step's component read. Returns the full collect once
    /// the last component has been read (after exactly `n` calls), leaving
    /// the scan ready for reuse. **Costs the step's one operation.**
    pub fn step(&mut self, mem: &mut StepAccess<'_>) -> Option<Vec<Option<T>>> {
        let q = self.out.len();
        let v = mem.read(self.regs[q]);
        self.out.push(v);
        if self.out.len() == self.regs.len() {
            Some(std::mem::take(&mut self.out))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_core::{ProcSet, Schedule, ScheduleCursor, Universe};
    use st_sim::{RunConfig, StopWhen};

    #[test]
    fn store_then_collect_sees_everything() {
        let u = Universe::new(3).unwrap();
        let mut sim = Sim::new(u);
        let obj: Collect<u64> = Collect::alloc(&mut sim, "C");
        assert_eq!(obj.width(), 3);
        for pid in u.processes() {
            let obj = obj.clone();
            sim.spawn(pid, move |ctx| async move {
                obj.store(&ctx, 100 + ctx.pid().index() as u64).await;
                let seen = obj.collect(&ctx).await;
                let count = seen.iter().flatten().count() as u64;
                ctx.decide(count);
            })
            .unwrap();
        }
        // Everyone stores first (3 steps), then collects (9 steps).
        let order: Vec<usize> = [0, 1, 2].into_iter().chain((0..9).map(|i| i % 3)).collect();
        let mut src = ScheduleCursor::new(Schedule::from_indices(order));
        sim.run(
            &mut src,
            RunConfig::steps(50).stop_when(StopWhen::AllFinished(ProcSet::full(u))),
        )
        .unwrap();
        let rep = sim.report();
        for pid in u.processes() {
            assert_eq!(
                rep.decision_value(pid),
                Some(3),
                "{pid} must see all stores"
            );
        }
    }

    /// The machine-ABI store + scan is observationally identical to the
    /// async store + collect on identical schedules.
    #[test]
    fn store_collect_machine_differential() {
        use st_sim::{Automaton, Status};

        struct CollectRunner {
            obj: Collect<u64>,
            scan: crate::CollectScan<u64>,
            stored: bool,
        }
        impl Automaton for CollectRunner {
            fn step(&mut self, mem: &mut StepAccess<'_>) -> Status {
                if !self.stored {
                    self.obj.store_machine(mem, 100 + mem.pid().index() as u64);
                    self.stored = true;
                    return Status::Running;
                }
                if let Some(seen) = self.scan.step(mem) {
                    mem.decide(seen.iter().flatten().count() as u64);
                    return Status::Done;
                }
                Status::Running
            }
        }

        let run = |machine: bool, schedule: Vec<usize>| {
            let u = Universe::new(3).unwrap();
            let mut sim = Sim::new(u);
            let obj: Collect<u64> = Collect::alloc(&mut sim, "C");
            for p in u.processes() {
                if machine {
                    sim.spawn_automaton(
                        p,
                        CollectRunner {
                            scan: obj.scan(),
                            obj: obj.clone(),
                            stored: false,
                        },
                    )
                    .unwrap();
                } else {
                    let obj = obj.clone();
                    sim.spawn(p, move |ctx| async move {
                        obj.store(&ctx, 100 + ctx.pid().index() as u64).await;
                        let seen = obj.collect(&ctx).await;
                        ctx.decide(seen.iter().flatten().count() as u64);
                    })
                    .unwrap();
                }
            }
            let mut src = ScheduleCursor::new(Schedule::from_indices(schedule));
            sim.run(&mut src, RunConfig::steps(200)).unwrap();
            let rep = sim.report();
            (
                rep.decisions,
                rep.op_counts,
                rep.register_stats,
                rep.finished,
            )
        };

        for sched in [
            (0..24).map(|i| i % 3).collect::<Vec<_>>(),
            [0, 1, 2].into_iter().chain((0..9).map(|i| i % 3)).collect(),
            (0..60).map(|i| (i * 7 + i / 5) % 3).collect(),
        ] {
            assert_eq!(run(false, sched.clone()), run(true, sched));
        }
    }

    #[test]
    fn collect_is_a_regular_read_sequence() {
        // A collect concurrent with stores may see a mix — but never values
        // that were never stored.
        let u = Universe::new(2).unwrap();
        let mut sim = Sim::new(u);
        let obj: Collect<u64> = Collect::alloc(&mut sim, "C");
        {
            let obj = obj.clone();
            sim.spawn(st_core::ProcessId::new(0), move |ctx| async move {
                for v in 1..=5u64 {
                    obj.store(&ctx, v).await;
                }
            })
            .unwrap();
        }
        {
            let obj = obj.clone();
            sim.spawn(st_core::ProcessId::new(1), move |ctx| async move {
                let seen = obj.collect(&ctx).await;
                if let Some(Some(v)) = seen.first() {
                    ctx.decide(*v);
                }
            })
            .unwrap();
        }
        let mut src = ScheduleCursor::new(Schedule::from_indices([0, 0, 1, 0, 1, 0, 0]));
        sim.run(&mut src, RunConfig::steps(20)).unwrap();
        let d = sim.report().decision_value(st_core::ProcessId::new(1));
        assert!(
            matches!(d, Some(1..=5)),
            "collected value must be a stored one: {d:?}"
        );
    }

    #[test]
    fn read_one_targets_a_single_component() {
        let u = Universe::new(2).unwrap();
        let mut sim = Sim::new(u);
        let obj: Collect<u64> = Collect::alloc(&mut sim, "C");
        {
            let obj = obj.clone();
            sim.spawn(st_core::ProcessId::new(0), move |ctx| async move {
                obj.store(&ctx, 7).await;
            })
            .unwrap();
        }
        {
            let obj = obj.clone();
            sim.spawn(st_core::ProcessId::new(1), move |ctx| async move {
                let v = obj.read_one(&ctx, st_core::ProcessId::new(0)).await;
                ctx.decide(v.unwrap_or(0));
            })
            .unwrap();
        }
        let mut src = ScheduleCursor::new(Schedule::from_indices([0, 1]));
        sim.run(&mut src, RunConfig::steps(5)).unwrap();
        assert_eq!(
            sim.report().decision_value(st_core::ProcessId::new(1)),
            Some(7)
        );
    }
}
