//! Adopt-commit objects (Gafni's reconciliation primitive).
//!
//! An adopt-commit object supports a single `propose(v)` per process and
//! returns either `Commit(w)` or `Adopt(w)` such that:
//!
//! - **Validity** — `w` was proposed by some process;
//! - **Convergence** — if every proposer proposes the same `v`, every
//!   outcome is `Commit(v)`;
//! - **Coherence** — if any process gets `Commit(w)`, every outcome is
//!   `Commit(w)` or `Adopt(w)`.
//!
//! It is the classic safety core of round-based consensus: commitment is
//! safe, adoption carries the value into the next round. Implemented with
//! two store-collect phases over SWMR registers (`2n + 2` steps per
//! propose).

use st_sim::{ProcessCtx, Reg, RegValue, Sim, StepAccess};

/// Outcome of [`AdoptCommit::propose`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AcOutcome<T> {
    /// Safe to decide `T`: every other proposer adopts it.
    Commit(T),
    /// Must carry `T` forward; deciding would be unsafe.
    Adopt(T),
}

impl<T> AcOutcome<T> {
    /// The carried value, whichever the verdict.
    pub fn value(&self) -> &T {
        match self {
            AcOutcome::Commit(v) | AcOutcome::Adopt(v) => v,
        }
    }

    /// Returns `true` for `Commit`.
    pub fn is_commit(&self) -> bool {
        matches!(self, AcOutcome::Commit(_))
    }
}

/// Phase-two cell: `(saw_unanimity, carried_value)`.
type Phase2Cell<T> = (bool, T);

/// An adopt-commit object. Clone into each participating process.
#[derive(Clone, Debug)]
pub struct AdoptCommit<T> {
    phase1: Vec<Reg<Option<T>>>,
    phase2: Vec<Reg<Option<Phase2Cell<T>>>>,
}

impl<T: RegValue + Ord> AdoptCommit<T> {
    /// Allocates the object's registers in `sim` (two single-writer
    /// registers per process: `name.A[p]`, `name.B[p]`).
    pub fn alloc(sim: &mut Sim, name: &str) -> Self {
        AdoptCommit {
            phase1: sim.alloc_per_process(&format!("{name}.A"), None),
            phase2: sim.alloc_per_process(&format!("{name}.B"), None),
        }
    }

    /// Proposes `value`; at most one call per process per object.
    ///
    /// **`2n + 2` steps.**
    pub async fn propose(&self, ctx: &ProcessCtx, value: T) -> AcOutcome<T> {
        let me = ctx.pid().index();

        // Phase 1: publish the proposal, then look for disagreement.
        ctx.write(self.phase1[me], Some(value.clone())).await;
        let mut unanimous = true;
        let mut carried = value.clone();
        for &reg in &self.phase1 {
            if let Some(seen) = ctx.read(reg).await {
                if seen != value {
                    unanimous = false;
                    carried = carried.min(seen);
                }
            }
        }

        // Phase 2: publish the verdict, then reconcile.
        ctx.write(self.phase2[me], Some((unanimous, carried.clone())))
            .await;
        let mut all_unanimous = true;
        let mut committed: Option<T> = None;
        let mut fallback = carried;
        for &reg in &self.phase2 {
            if let Some((flag, v)) = ctx.read(reg).await {
                if flag {
                    committed = Some(v);
                } else {
                    all_unanimous = false;
                    fallback = fallback.min(v);
                }
            }
        }

        match committed {
            Some(v) if all_unanimous => AcOutcome::Commit(v),
            Some(v) => AcOutcome::Adopt(v),
            None => AcOutcome::Adopt(fallback),
        }
    }

    /// Begins a machine-ABI propose of `value`: the `2n + 2`-step sequence
    /// of [`propose`](Self::propose) as a resumable step core (one register
    /// operation per [`AcPropose::step`] call), for automata that inline
    /// the object's step sequence. At most one propose per process per
    /// object, as for the async path.
    pub fn propose_machine(&self, value: T) -> AcPropose<T> {
        AcPropose {
            phase1: self.phase1.clone(),
            phase2: self.phase2.clone(),
            value,
            phase: AcPhase::Phase1Write,
        }
    }
}

/// Control state of a machine-ABI propose: which of the `2n + 2` operations
/// the next step performs.
#[derive(Clone, Debug)]
enum AcPhase<T> {
    Phase1Write,
    Phase1Read {
        q: usize,
        unanimous: bool,
        carried: T,
    },
    Phase2Write {
        unanimous: bool,
        carried: T,
    },
    Phase2Read {
        q: usize,
        all_unanimous: bool,
        committed: Option<T>,
        fallback: T,
    },
}

/// A machine-ABI adopt-commit propose in progress — the state-machine port
/// of [`AdoptCommit::propose`], operation for operation. Obtain from
/// [`AdoptCommit::propose_machine`].
#[derive(Clone, Debug)]
pub struct AcPropose<T> {
    phase1: Vec<Reg<Option<T>>>,
    phase2: Vec<Reg<Option<Phase2Cell<T>>>>,
    value: T,
    phase: AcPhase<T>,
}

impl<T: RegValue + Ord> AcPropose<T> {
    /// Performs this step's operation. Returns the outcome once the final
    /// phase-2 read completes (after exactly `2n + 2` calls). **Costs the
    /// step's one operation.**
    pub fn step(&mut self, mem: &mut StepAccess<'_>) -> Option<AcOutcome<T>> {
        let me = mem.pid().index();
        let n = self.phase1.len();
        match std::mem::replace(&mut self.phase, AcPhase::Phase1Write) {
            AcPhase::Phase1Write => {
                mem.write(self.phase1[me], Some(self.value.clone()));
                self.phase = AcPhase::Phase1Read {
                    q: 0,
                    unanimous: true,
                    carried: self.value.clone(),
                };
                None
            }
            AcPhase::Phase1Read {
                q,
                mut unanimous,
                mut carried,
            } => {
                if let Some(seen) = mem.read(self.phase1[q]) {
                    if seen != self.value {
                        unanimous = false;
                        carried = carried.min(seen);
                    }
                }
                self.phase = if q + 1 < n {
                    AcPhase::Phase1Read {
                        q: q + 1,
                        unanimous,
                        carried,
                    }
                } else {
                    AcPhase::Phase2Write { unanimous, carried }
                };
                None
            }
            AcPhase::Phase2Write { unanimous, carried } => {
                mem.write(self.phase2[me], Some((unanimous, carried.clone())));
                self.phase = AcPhase::Phase2Read {
                    q: 0,
                    all_unanimous: true,
                    committed: None,
                    fallback: carried,
                };
                None
            }
            AcPhase::Phase2Read {
                q,
                mut all_unanimous,
                mut committed,
                mut fallback,
            } => {
                if let Some((flag, v)) = mem.read(self.phase2[q]) {
                    if flag {
                        committed = Some(v);
                    } else {
                        all_unanimous = false;
                        fallback = fallback.min(v);
                    }
                }
                if q + 1 < n {
                    self.phase = AcPhase::Phase2Read {
                        q: q + 1,
                        all_unanimous,
                        committed,
                        fallback,
                    };
                    return None;
                }
                Some(match committed {
                    Some(v) if all_unanimous => AcOutcome::Commit(v),
                    Some(v) => AcOutcome::Adopt(v),
                    None => AcOutcome::Adopt(fallback),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_core::{ProcSet, ProcessId, Schedule, ScheduleCursor, Universe};
    use st_sim::{RunConfig, Sim, StopWhen};

    /// Runs an adopt-commit with the given proposals and interleaving;
    /// returns (is_commit, value) per process.
    fn run_ac(proposals: &[u64], schedule: Vec<usize>) -> Vec<Option<(bool, u64)>> {
        let n = proposals.len();
        let u = Universe::new(n).unwrap();
        let mut sim = Sim::new(u);
        let ac: AdoptCommit<u64> = AdoptCommit::alloc(&mut sim, "AC");
        let results = sim.alloc_array("result", n, None::<(bool, u64)>);
        for p in u.processes() {
            let ac = ac.clone();
            let my_result = results[p.index()];
            let proposal = proposals[p.index()];
            sim.spawn(p, move |ctx| async move {
                let outcome = ac.propose(&ctx, proposal).await;
                ctx.write(my_result, Some((outcome.is_commit(), *outcome.value())))
                    .await;
            })
            .unwrap();
        }
        let mut src = ScheduleCursor::new(Schedule::from_indices(schedule));
        sim.run(
            &mut src,
            RunConfig::steps(10_000).stop_when(StopWhen::AllFinished(ProcSet::full(u))),
        )
        .unwrap();
        results.iter().map(|&r| sim.peek(r)).collect()
    }

    fn round_robin(n: usize, len: usize) -> Vec<usize> {
        (0..len).map(|i| i % n).collect()
    }

    fn sequential(n: usize, per: usize) -> Vec<usize> {
        (0..n).flat_map(|p| std::iter::repeat_n(p, per)).collect()
    }

    #[test]
    fn unanimous_proposals_commit() {
        for sched in [round_robin(3, 60), sequential(3, 10)] {
            let out = run_ac(&[7, 7, 7], sched);
            for (i, r) in out.iter().enumerate() {
                let (commit, v) = r.expect("all must finish");
                assert!(commit, "p{i} must commit on unanimity");
                assert_eq!(v, 7);
            }
        }
    }

    #[test]
    fn solo_proposal_commits() {
        // Only p0 moves; others never step. p0 must commit its own value.
        let out = run_ac(&[3, 8, 9], sequential(1, 10));
        let (commit, v) = out[0].expect("p0 finishes");
        assert!(commit);
        assert_eq!(v, 3);
    }

    #[test]
    fn coherence_under_contention() {
        // Many interleavings of conflicting proposals: if anyone commits w,
        // everyone carries w.
        for seed in 0..30u64 {
            let n = 3;
            let sched: Vec<usize> = (0..200)
                .map(|i| ((seed * 31 + i * 17 + i / 7) % n as u64) as usize)
                .collect();
            let out = run_ac(&[1, 2, 3], sched);
            let finished: Vec<(bool, u64)> = out.iter().flatten().copied().collect();
            if let Some((_, w)) = finished.iter().find(|(c, _)| *c) {
                for (_, v) in &finished {
                    assert_eq!(v, w, "seed {seed}: committed {w}, saw {v}");
                }
            }
            // Validity: all carried values were proposed.
            for (_, v) in &finished {
                assert!([1, 2, 3].contains(v));
            }
        }
    }

    #[test]
    fn disagreement_seen_sequentially_adopts() {
        // p0 completes fully, then p1 proposes a different value: p1 sees
        // p0's committed value and must adopt/commit that value, never its
        // own.
        let mut sched = sequential(1, 10);
        sched.extend(std::iter::repeat_n(1, 10));
        let out = run_ac(&[4, 9, 0], sched);
        let (c0, v0) = out[0].unwrap();
        assert!(c0 && v0 == 4);
        let (_, v1) = out[1].unwrap();
        assert_eq!(v1, 4, "p1 must carry p0's committed value");
    }

    /// The machine-ABI propose is observationally identical to the async
    /// transcription: same outcomes, same op counts, same register
    /// statistics, on identical schedules.
    #[test]
    fn propose_machine_differential() {
        use st_sim::{Automaton, Status};

        struct AcRunner {
            propose: crate::AcPropose<u64>,
            result: st_sim::Reg<Option<(bool, u64)>>,
            outcome: Option<(bool, u64)>,
        }
        impl Automaton for AcRunner {
            fn step(&mut self, mem: &mut StepAccess<'_>) -> Status {
                if let Some(out) = self.outcome {
                    mem.write(self.result, Some(out));
                    return Status::Done;
                }
                if let Some(out) = self.propose.step(mem) {
                    self.outcome = Some((out.is_commit(), *out.value()));
                }
                Status::Running
            }
        }

        let run_machine = |proposals: &[u64], schedule: Vec<usize>| {
            let n = proposals.len();
            let u = Universe::new(n).unwrap();
            let mut sim = Sim::new(u);
            let ac: AdoptCommit<u64> = AdoptCommit::alloc(&mut sim, "AC");
            let results = sim.alloc_array("result", n, None::<(bool, u64)>);
            for p in u.processes() {
                sim.spawn_automaton(
                    p,
                    AcRunner {
                        propose: ac.propose_machine(proposals[p.index()]),
                        result: results[p.index()],
                        outcome: None,
                    },
                )
                .unwrap();
            }
            let mut src = ScheduleCursor::new(Schedule::from_indices(schedule));
            sim.run(
                &mut src,
                RunConfig::steps(10_000).stop_when(StopWhen::AllFinished(ProcSet::full(u))),
            )
            .unwrap();
            let outs: Vec<Option<(bool, u64)>> = results.iter().map(|&r| sim.peek(r)).collect();
            let rep = sim.report();
            (outs, rep.op_counts, rep.register_stats)
        };
        let run_async = |proposals: &[u64], schedule: Vec<usize>| {
            let n = proposals.len();
            let u = Universe::new(n).unwrap();
            let mut sim = Sim::new(u);
            let ac: AdoptCommit<u64> = AdoptCommit::alloc(&mut sim, "AC");
            let results = sim.alloc_array("result", n, None::<(bool, u64)>);
            for p in u.processes() {
                let ac = ac.clone();
                let my_result = results[p.index()];
                let proposal = proposals[p.index()];
                sim.spawn(p, move |ctx| async move {
                    let outcome = ac.propose(&ctx, proposal).await;
                    ctx.write(my_result, Some((outcome.is_commit(), *outcome.value())))
                        .await;
                })
                .unwrap();
            }
            let mut src = ScheduleCursor::new(Schedule::from_indices(schedule));
            sim.run(
                &mut src,
                RunConfig::steps(10_000).stop_when(StopWhen::AllFinished(ProcSet::full(u))),
            )
            .unwrap();
            let outs: Vec<Option<(bool, u64)>> = results.iter().map(|&r| sim.peek(r)).collect();
            let rep = sim.report();
            (outs, rep.op_counts, rep.register_stats)
        };

        for (label, proposals, sched) in [
            ("rr unanimous", vec![7u64, 7, 7], round_robin(3, 60)),
            ("rr conflict", vec![1, 2, 3], round_robin(3, 60)),
            ("seq", vec![4, 9, 0], sequential(3, 12)),
            (
                "scrambled",
                vec![5, 5, 8, 2],
                (0..200).map(|i| (i * 13 + i / 7) % 4).collect(),
            ),
        ] {
            assert_eq!(
                run_async(&proposals, sched.clone()),
                run_machine(&proposals, sched),
                "{label}: ABIs diverged"
            );
        }
    }

    #[test]
    fn outcome_accessors() {
        let c: AcOutcome<u64> = AcOutcome::Commit(5);
        let a: AcOutcome<u64> = AcOutcome::Adopt(6);
        assert!(c.is_commit() && !a.is_commit());
        assert_eq!(*c.value(), 5);
        assert_eq!(*a.value(), 6);
    }

    // Silence an unused-import lint in non-test builds.
    #[allow(unused)]
    fn _unused(_: ProcessId) {}
}
