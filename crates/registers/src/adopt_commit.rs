//! Adopt-commit objects (Gafni's reconciliation primitive).
//!
//! An adopt-commit object supports a single `propose(v)` per process and
//! returns either `Commit(w)` or `Adopt(w)` such that:
//!
//! - **Validity** — `w` was proposed by some process;
//! - **Convergence** — if every proposer proposes the same `v`, every
//!   outcome is `Commit(v)`;
//! - **Coherence** — if any process gets `Commit(w)`, every outcome is
//!   `Commit(w)` or `Adopt(w)`.
//!
//! It is the classic safety core of round-based consensus: commitment is
//! safe, adoption carries the value into the next round. Implemented with
//! two store-collect phases over SWMR registers (`2n + 2` steps per
//! propose).

use st_sim::{ProcessCtx, Reg, RegValue, Sim};

/// Outcome of [`AdoptCommit::propose`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AcOutcome<T> {
    /// Safe to decide `T`: every other proposer adopts it.
    Commit(T),
    /// Must carry `T` forward; deciding would be unsafe.
    Adopt(T),
}

impl<T> AcOutcome<T> {
    /// The carried value, whichever the verdict.
    pub fn value(&self) -> &T {
        match self {
            AcOutcome::Commit(v) | AcOutcome::Adopt(v) => v,
        }
    }

    /// Returns `true` for `Commit`.
    pub fn is_commit(&self) -> bool {
        matches!(self, AcOutcome::Commit(_))
    }
}

/// Phase-two cell: `(saw_unanimity, carried_value)`.
type Phase2Cell<T> = (bool, T);

/// An adopt-commit object. Clone into each participating process.
#[derive(Clone, Debug)]
pub struct AdoptCommit<T> {
    phase1: Vec<Reg<Option<T>>>,
    phase2: Vec<Reg<Option<Phase2Cell<T>>>>,
}

impl<T: RegValue + Ord> AdoptCommit<T> {
    /// Allocates the object's registers in `sim` (two single-writer
    /// registers per process: `name.A[p]`, `name.B[p]`).
    pub fn alloc(sim: &mut Sim, name: &str) -> Self {
        AdoptCommit {
            phase1: sim.alloc_per_process(&format!("{name}.A"), None),
            phase2: sim.alloc_per_process(&format!("{name}.B"), None),
        }
    }

    /// Proposes `value`; at most one call per process per object.
    ///
    /// **`2n + 2` steps.**
    pub async fn propose(&self, ctx: &ProcessCtx, value: T) -> AcOutcome<T> {
        let me = ctx.pid().index();

        // Phase 1: publish the proposal, then look for disagreement.
        ctx.write(self.phase1[me], Some(value.clone())).await;
        let mut unanimous = true;
        let mut carried = value.clone();
        for &reg in &self.phase1 {
            if let Some(seen) = ctx.read(reg).await {
                if seen != value {
                    unanimous = false;
                    carried = carried.min(seen);
                }
            }
        }

        // Phase 2: publish the verdict, then reconcile.
        ctx.write(self.phase2[me], Some((unanimous, carried.clone())))
            .await;
        let mut all_unanimous = true;
        let mut committed: Option<T> = None;
        let mut fallback = carried;
        for &reg in &self.phase2 {
            if let Some((flag, v)) = ctx.read(reg).await {
                if flag {
                    committed = Some(v);
                } else {
                    all_unanimous = false;
                    fallback = fallback.min(v);
                }
            }
        }

        match committed {
            Some(v) if all_unanimous => AcOutcome::Commit(v),
            Some(v) => AcOutcome::Adopt(v),
            None => AcOutcome::Adopt(fallback),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_core::{ProcSet, ProcessId, Schedule, ScheduleCursor, Universe};
    use st_sim::{RunConfig, Sim, StopWhen};

    /// Runs an adopt-commit with the given proposals and interleaving;
    /// returns (is_commit, value) per process.
    fn run_ac(proposals: &[u64], schedule: Vec<usize>) -> Vec<Option<(bool, u64)>> {
        let n = proposals.len();
        let u = Universe::new(n).unwrap();
        let mut sim = Sim::new(u);
        let ac: AdoptCommit<u64> = AdoptCommit::alloc(&mut sim, "AC");
        let results = sim.alloc_array("result", n, None::<(bool, u64)>);
        for p in u.processes() {
            let ac = ac.clone();
            let my_result = results[p.index()];
            let proposal = proposals[p.index()];
            sim.spawn(p, move |ctx| async move {
                let outcome = ac.propose(&ctx, proposal).await;
                ctx.write(my_result, Some((outcome.is_commit(), *outcome.value())))
                    .await;
            })
            .unwrap();
        }
        let mut src = ScheduleCursor::new(Schedule::from_indices(schedule));
        sim.run(
            &mut src,
            RunConfig::steps(10_000).stop_when(StopWhen::AllFinished(ProcSet::full(u))),
        );
        results.iter().map(|&r| sim.peek(r)).collect()
    }

    fn round_robin(n: usize, len: usize) -> Vec<usize> {
        (0..len).map(|i| i % n).collect()
    }

    fn sequential(n: usize, per: usize) -> Vec<usize> {
        (0..n).flat_map(|p| std::iter::repeat_n(p, per)).collect()
    }

    #[test]
    fn unanimous_proposals_commit() {
        for sched in [round_robin(3, 60), sequential(3, 10)] {
            let out = run_ac(&[7, 7, 7], sched);
            for (i, r) in out.iter().enumerate() {
                let (commit, v) = r.expect("all must finish");
                assert!(commit, "p{i} must commit on unanimity");
                assert_eq!(v, 7);
            }
        }
    }

    #[test]
    fn solo_proposal_commits() {
        // Only p0 moves; others never step. p0 must commit its own value.
        let out = run_ac(&[3, 8, 9], sequential(1, 10));
        let (commit, v) = out[0].expect("p0 finishes");
        assert!(commit);
        assert_eq!(v, 3);
    }

    #[test]
    fn coherence_under_contention() {
        // Many interleavings of conflicting proposals: if anyone commits w,
        // everyone carries w.
        for seed in 0..30u64 {
            let n = 3;
            let sched: Vec<usize> = (0..200)
                .map(|i| ((seed * 31 + i * 17 + i / 7) % n as u64) as usize)
                .collect();
            let out = run_ac(&[1, 2, 3], sched);
            let finished: Vec<(bool, u64)> = out.iter().flatten().copied().collect();
            if let Some((_, w)) = finished.iter().find(|(c, _)| *c) {
                for (_, v) in &finished {
                    assert_eq!(v, w, "seed {seed}: committed {w}, saw {v}");
                }
            }
            // Validity: all carried values were proposed.
            for (_, v) in &finished {
                assert!([1, 2, 3].contains(v));
            }
        }
    }

    #[test]
    fn disagreement_seen_sequentially_adopts() {
        // p0 completes fully, then p1 proposes a different value: p1 sees
        // p0's committed value and must adopt/commit that value, never its
        // own.
        let mut sched = sequential(1, 10);
        sched.extend(std::iter::repeat_n(1, 10));
        let out = run_ac(&[4, 9, 0], sched);
        let (c0, v0) = out[0].unwrap();
        assert!(c0 && v0 == 4);
        let (_, v1) = out[1].unwrap();
        assert_eq!(v1, 4, "p1 must carry p0's committed value");
    }

    #[test]
    fn outcome_accessors() {
        let c: AcOutcome<u64> = AcOutcome::Commit(5);
        let a: AcOutcome<u64> = AcOutcome::Adopt(6);
        assert!(c.is_commit() && !a.is_commit());
        assert_eq!(*c.value(), 5);
        assert_eq!(*a.value(), 6);
    }

    // Silence an unused-import lint in non-test builds.
    #[allow(unused)]
    fn _unused(_: ProcessId) {}
}
