//! Atomic snapshot object via double collect.
//!
//! Each process owns a versioned cell `(seq, value)`. A `scan` performs
//! repeated collects until two consecutive collects are identical — the
//! classic *double collect*: an unchanged pair of collects is a valid
//! linearization point for the whole vector.
//!
//! This is the unbounded-retry variant (Afek et al.'s bounded helping is not
//! needed by the protocols in this reproduction). Under continuous writer
//! churn a scan can retry indefinitely; callers use it either in quiescent
//! phases or accept the retry cost. `scan_bounded` exposes the retry budget
//! explicitly.

use st_sim::{ProcessCtx, Reg, RegValue, Sim};

/// One versioned component of the snapshot object.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VersionedCell<T> {
    /// Writer-local sequence number (0 = never written).
    pub seq: u64,
    /// Stored value, `None` until first write.
    pub value: Option<T>,
}

impl<T> Default for VersionedCell<T> {
    fn default() -> Self {
        VersionedCell {
            seq: 0,
            value: None,
        }
    }
}

/// An atomic-snapshot object over single-writer versioned cells.
#[derive(Clone, Debug)]
pub struct Snapshot<T> {
    cells: Vec<Reg<VersionedCell<T>>>,
}

/// Result of a bounded scan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScanOutcome<T> {
    /// Two identical consecutive collects: an atomic snapshot.
    Atomic(Vec<Option<T>>),
    /// Retry budget exhausted; the last (non-atomic) collect is returned as
    /// a regular read.
    Interference(Vec<Option<T>>),
}

impl<T: RegValue + PartialEq> Snapshot<T> {
    /// Allocates the object's registers in `sim` (one single-writer
    /// versioned cell per process, named `name[p]`).
    pub fn alloc(sim: &mut Sim, name: &str) -> Self {
        Snapshot {
            cells: sim.alloc_per_process(name, VersionedCell::default()),
        }
    }

    /// Updates the calling process's component.
    ///
    /// **Two steps** (read own cell for the sequence number, then write).
    pub async fn update(&self, ctx: &ProcessCtx, value: T) {
        let mine = self.cells[ctx.pid().index()];
        let current = ctx.read(mine).await;
        ctx.write(
            mine,
            VersionedCell {
                seq: current.seq + 1,
                value: Some(value),
            },
        )
        .await;
    }

    /// Scans until two consecutive collects agree (unbounded retries; see
    /// module docs). **`2n` steps per attempt.**
    pub async fn scan(&self, ctx: &ProcessCtx) -> Vec<Option<T>> {
        let mut previous = self.collect_cells(ctx).await;
        loop {
            let current = self.collect_cells(ctx).await;
            if current == previous {
                return current.into_iter().map(|c| c.value).collect();
            }
            previous = current;
        }
    }

    /// Scans with a bounded number of double-collect attempts.
    pub async fn scan_bounded(&self, ctx: &ProcessCtx, max_attempts: usize) -> ScanOutcome<T> {
        let mut previous = self.collect_cells(ctx).await;
        for _ in 0..max_attempts {
            let current = self.collect_cells(ctx).await;
            if current == previous {
                return ScanOutcome::Atomic(current.into_iter().map(|c| c.value).collect());
            }
            previous = current;
        }
        ScanOutcome::Interference(previous.into_iter().map(|c| c.value).collect())
    }

    async fn collect_cells(&self, ctx: &ProcessCtx) -> Vec<VersionedCell<T>> {
        let mut out = Vec::with_capacity(self.cells.len());
        for &cell in &self.cells {
            out.push(ctx.read(cell).await);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_core::{ProcSet, ProcessId, Schedule, ScheduleCursor, Universe};
    use st_sim::{RunConfig, StopWhen};

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn quiescent_scan_is_exact() {
        let u = Universe::new(3).unwrap();
        let mut sim = Sim::new(u);
        let snap: Snapshot<u64> = Snapshot::alloc(&mut sim, "S");
        for p in u.processes() {
            let snap = snap.clone();
            sim.spawn(p, move |ctx| async move {
                snap.update(&ctx, 10 + ctx.pid().index() as u64).await;
                let view = snap.scan(&ctx).await;
                let sum: u64 = view.into_iter().flatten().sum();
                ctx.decide(sum);
            })
            .unwrap();
        }
        // All updates complete (2 steps each), then scans run sequentially.
        let order: Vec<usize> = [0, 0, 1, 1, 2, 2]
            .into_iter()
            .chain((0..6).map(|_| 0))
            .chain((0..6).map(|_| 1))
            .chain((0..6).map(|_| 2))
            .collect();
        let mut src = ScheduleCursor::new(Schedule::from_indices(order));
        sim.run(
            &mut src,
            RunConfig::steps(100).stop_when(StopWhen::AllFinished(ProcSet::full(u))),
        )
        .unwrap();
        let rep = sim.report();
        for p in u.processes() {
            assert_eq!(rep.decision_value(p), Some(33), "{p}");
        }
    }

    #[test]
    fn double_collect_retries_under_interference() {
        let u = Universe::new(2).unwrap();
        let mut sim = Sim::new(u);
        let snap: Snapshot<u64> = Snapshot::alloc(&mut sim, "S");
        // p0 scans while p1 writes in between the two collects.
        {
            let snap = snap.clone();
            sim.spawn(pid(0), move |ctx| async move {
                let view = snap.scan(&ctx).await;
                ctx.decide(view[1].unwrap_or(0));
            })
            .unwrap();
        }
        {
            let snap = snap.clone();
            sim.spawn(pid(1), move |ctx| async move {
                snap.update(&ctx, 1).await;
                snap.update(&ctx, 2).await;
            })
            .unwrap();
        }
        // p0: collect #1 (2 steps); p1: full update (2 steps) → p0's second
        // collect differs → retry; p1 writes again; eventually p1 finishes
        // and p0's double collect stabilizes.
        let order = vec![0, 0, 1, 1, 0, 0, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0];
        let mut src = ScheduleCursor::new(Schedule::from_indices(order));
        sim.run(&mut src, RunConfig::steps(50)).unwrap();
        // The final snapshot must reflect p1's last write.
        assert_eq!(sim.report().decision_value(pid(0)), Some(2));
    }

    #[test]
    fn bounded_scan_reports_interference() {
        let u = Universe::new(2).unwrap();
        let mut sim = Sim::new(u);
        let snap: Snapshot<u64> = Snapshot::alloc(&mut sim, "S");
        {
            let snap = snap.clone();
            sim.spawn(pid(0), move |ctx| async move {
                match snap.scan_bounded(&ctx, 1).await {
                    ScanOutcome::Atomic(_) => ctx.decide(1),
                    ScanOutcome::Interference(_) => ctx.decide(2),
                }
            })
            .unwrap();
        }
        {
            let snap = snap.clone();
            sim.spawn(pid(1), move |ctx| async move {
                loop {
                    snap.update(&ctx, 9).await;
                }
            })
            .unwrap();
        }
        // p0's first collect (2 steps), a full p1 update (2 steps: read own
        // seq, write), then p0's only retry collect: the two collects differ,
        // and the budget of 1 attempt is exhausted.
        let order = vec![0, 0, 1, 1, 0, 0, 0, 0];
        let mut src = ScheduleCursor::new(Schedule::from_indices(order));
        sim.run(
            &mut src,
            RunConfig::steps(8).stop_when(StopWhen::AnyDecided),
        )
        .unwrap();
        assert_eq!(sim.report().decision_value(pid(0)), Some(2));
    }

    #[test]
    fn update_costs_two_steps() {
        let u = Universe::new(1).unwrap();
        let mut sim = Sim::new(u);
        let snap: Snapshot<u64> = Snapshot::alloc(&mut sim, "S");
        {
            let snap = snap.clone();
            sim.spawn(pid(0), move |ctx| async move {
                snap.update(&ctx, 5).await;
                ctx.pause().await; // park
            })
            .unwrap();
        }
        sim.step_with(pid(0));
        sim.step_with(pid(0));
        let rep = sim.report();
        assert_eq!(rep.op_counts[0], 2);
    }
}
