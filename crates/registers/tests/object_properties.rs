//! Property tests for the shared objects: adopt-commit coherence, snapshot
//! consistency, and collect regularity under arbitrary interleavings.

use proptest::prelude::*;
use st_core::{ProcSet, ProcessId, Schedule, ScheduleCursor, Universe, Value};
use st_registers::{AcOutcome, AdoptCommit, Collect, Snapshot};
use st_sim::{RunConfig, Sim, StopWhen};

prop_compose! {
    fn arb_schedule(n: usize)(steps in prop::collection::vec(0..n, 100..2_500)) -> Schedule {
        Schedule::from_indices(steps)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Adopt-commit: validity always; coherence — a commit forces every
    /// other outcome to carry the same value; convergence — unanimous
    /// proposals always commit.
    #[test]
    fn adopt_commit_contract(sched in arb_schedule(3), unanimous in any::<bool>()) {
        let n = 3;
        let u = Universe::new(n).unwrap();
        let mut sim = Sim::new(u);
        let ac: AdoptCommit<Value> = AdoptCommit::alloc(&mut sim, "ac");
        let results = sim.alloc_array("res", n, None::<(bool, Value)>);
        let proposals: Vec<Value> = if unanimous {
            vec![9; n]
        } else {
            (0..n as Value).collect()
        };
        for p in u.processes() {
            let ac = ac.clone();
            let slot = results[p.index()];
            let v = proposals[p.index()];
            sim.spawn(p, move |ctx| async move {
                let out = ac.propose(&ctx, v).await;
                ctx.write(slot, Some((out.is_commit(), *out.value()))).await;
            }).unwrap();
        }
        let len = sched.len() as u64;
        let mut src = ScheduleCursor::new(sched);
        sim.run(&mut src, RunConfig::steps(len).stop_when(StopWhen::AllFinished(ProcSet::full(u)))).unwrap();
        let outs: Vec<(bool, Value)> = results.iter().filter_map(|&r| sim.peek(r)).collect();
        for (_, v) in &outs {
            prop_assert!(proposals.contains(v), "unproposed {v}");
        }
        if let Some((_, w)) = outs.iter().find(|(c, _)| *c) {
            for (_, v) in &outs {
                prop_assert_eq!(v, w, "coherence violated");
            }
        }
        if unanimous && outs.len() == n {
            prop_assert!(outs.iter().all(|(c, v)| *c && *v == 9), "convergence violated");
        }
    }

    /// Snapshot scans only ever return values that were actually written,
    /// and sequential scans at one process are monotone in versions.
    #[test]
    fn snapshot_regularity(sched in arb_schedule(3)) {
        let n = 3;
        let u = Universe::new(n).unwrap();
        let mut sim = Sim::new(u);
        let snap: Snapshot<Value> = Snapshot::alloc(&mut sim, "s");
        let witness = sim.alloc("w", Vec::<Value>::new());
        // p0 scans repeatedly recording what it saw of p1's cell; p1 writes
        // increasing values; p2 idles on updates.
        {
            let snap = snap.clone();
            sim.spawn(ProcessId::new(0), move |ctx| async move {
                loop {
                    let view = snap.scan(&ctx).await;
                    if let Some(v) = view[1] {
                        let mut seen = ctx.read(witness).await;
                        seen.push(v);
                        ctx.write(witness, seen).await;
                    }
                }
            }).unwrap();
        }
        {
            let snap = snap.clone();
            sim.spawn(ProcessId::new(1), move |ctx| async move {
                let mut i = 0;
                loop {
                    i += 1;
                    snap.update(&ctx, i).await;
                }
            }).unwrap();
        }
        {
            let snap = snap.clone();
            sim.spawn(ProcessId::new(2), move |ctx| async move {
                loop {
                    snap.update(&ctx, 1_000).await;
                }
            }).unwrap();
        }
        let len = sched.len() as u64;
        let mut src = ScheduleCursor::new(sched);
        sim.run(&mut src, RunConfig::steps(len)).unwrap();
        let seen: Vec<Value> = sim.peek(witness);
        // p1's observed values are nondecreasing (scans are ordered).
        for w in seen.windows(2) {
            prop_assert!(w[0] <= w[1], "scan regression: {seen:?}");
        }
    }

    /// Collect: after everyone stored, any complete collect sees all
    /// components.
    #[test]
    fn collect_sees_completed_stores(order_seed in 0u64..1_000) {
        let n = 4;
        let u = Universe::new(n).unwrap();
        let mut sim = Sim::new(u);
        let obj: Collect<Value> = Collect::alloc(&mut sim, "c");
        for p in u.processes() {
            let obj = obj.clone();
            sim.spawn(p, move |ctx| async move {
                obj.store(&ctx, 1 + ctx.pid().index() as Value).await;
                let seen = obj.collect(&ctx).await;
                ctx.decide(seen.iter().flatten().count() as Value);
            }).unwrap();
        }
        // Phase 1: all stores (any order); phase 2: all collects.
        let mut order: Vec<usize> = (0..n).collect();
        // Cheap deterministic shuffle from the seed.
        for i in (1..n).rev() {
            let j = (order_seed as usize).wrapping_mul(31).wrapping_add(i) % (i + 1);
            order.swap(i, j);
        }
        let mut steps: Vec<usize> = order.clone();
        for round in 0..n {
            let _ = round;
            steps.extend(order.iter().copied());
        }
        let mut src = ScheduleCursor::new(Schedule::from_indices(steps));
        sim.run(&mut src, RunConfig::steps(1_000).stop_when(StopWhen::AllDecided(ProcSet::full(u)))).unwrap();
        for p in u.processes() {
            // Every collector ran after all stores: sees all n components.
            prop_assert_eq!(sim.report().decision_value(p), Some(n as Value));
        }
    }

    /// AcOutcome accessors are consistent.
    #[test]
    fn outcome_accessors(v in any::<u64>(), commit in any::<bool>()) {
        let out: AcOutcome<u64> = if commit { AcOutcome::Commit(v) } else { AcOutcome::Adopt(v) };
        prop_assert_eq!(*out.value(), v);
        prop_assert_eq!(out.is_commit(), commit);
    }
}
