//! The register objects past the 64-process wall.
//!
//! `Collect` and `AdoptCommit` are index-based — no `ProcSet` anywhere in
//! their signatures — so they already work at any `n ≤ MAX_PROCESSES`.
//! These tests pin that down at `n = 128`, on both the async ABI and the
//! machine ABI, so the width-generic detector stack has working shared
//! objects to build on at large `n`.

use st_core::{Schedule, ScheduleCursor, Universe};
use st_registers::{AcOutcome, AcPropose, AdoptCommit, Collect};
use st_sim::{Automaton, RunConfig, Sim, Status, StepAccess};

const N: usize = 128;

fn round_robin(n: usize, rotations: usize) -> Schedule {
    Schedule::from_indices((0..n * rotations).map(|s| s % n))
}

#[test]
fn collect_async_at_n_128() {
    let u = Universe::new(N).unwrap();
    let mut sim = Sim::new(u);
    let obj: Collect<u64> = Collect::alloc(&mut sim, "C");
    assert_eq!(obj.width(), N);
    let results = sim.alloc_array("result", N, None::<u64>);
    for p in u.processes() {
        let obj = obj.clone();
        let my_result = results[p.index()];
        sim.spawn(p, move |ctx| async move {
            obj.store(&ctx, 1000 + ctx.pid().index() as u64).await;
            let seen = obj.collect(&ctx).await;
            let sum: u64 = seen.iter().flatten().sum();
            ctx.write(my_result, Some(sum)).await;
        })
        .unwrap();
    }
    // Store + n-read collect + result write = n + 2 steps per process;
    // finished processes absorb the rotation slack as no-ops.
    let mut src = ScheduleCursor::new(round_robin(N, N + 2));
    sim.run(&mut src, RunConfig::steps((N * (N + 2)) as u64))
        .unwrap();

    // Round-robin means every store lands before any collect finishes, so
    // every process sums the full universe of values.
    let expected: u64 = (0..N as u64).map(|i| 1000 + i).sum();
    for (i, &r) in results.iter().enumerate() {
        assert_eq!(sim.peek(r), Some(expected), "p{i} missed a component");
    }
}

#[test]
fn collect_machine_at_n_128() {
    struct Scanner {
        obj: Collect<u64>,
        scan: st_registers::CollectScan<u64>,
        stored: bool,
        seen: Option<u64>,
    }
    impl Automaton for Scanner {
        fn step(&mut self, mem: &mut StepAccess<'_>) -> Status {
            if !self.stored {
                self.obj.store_machine(mem, 2000 + mem.pid().index() as u64);
                self.stored = true;
                return Status::Running;
            }
            if let Some(view) = self.scan.step(mem) {
                self.seen = Some(view.iter().flatten().sum());
                return Status::Done;
            }
            Status::Running
        }
    }

    let u = Universe::new(N).unwrap();
    let mut sim = Sim::new(u);
    let obj: Collect<u64> = Collect::alloc(&mut sim, "C");
    let mut fleet: Vec<Scanner> = u
        .processes()
        .map(|_| Scanner {
            obj: obj.clone(),
            scan: obj.scan(),
            stored: false,
            seen: None,
        })
        .collect();
    let schedule = round_robin(N, N + 1);
    sim.run_automata_replay(
        &mut fleet,
        &schedule,
        RunConfig::steps(schedule.len() as u64),
    )
    .unwrap();

    let expected: u64 = (0..N as u64).map(|i| 2000 + i).sum();
    for (i, s) in fleet.iter().enumerate() {
        assert_eq!(s.seen, Some(expected), "p{i}'s scan missed a component");
    }
}

#[test]
fn adopt_commit_at_n_128() {
    // Unanimity at n = 128 must commit everywhere (machine ABI).
    struct Proposer {
        propose: AcPropose<u64>,
        outcome: Option<AcOutcome<u64>>,
    }
    impl Automaton for Proposer {
        fn step(&mut self, mem: &mut StepAccess<'_>) -> Status {
            if self.outcome.is_some() {
                return Status::Done;
            }
            self.outcome = self.propose.step(mem);
            Status::Running
        }
    }

    let run = |proposals: &dyn Fn(usize) -> u64| {
        let u = Universe::new(N).unwrap();
        let mut sim = Sim::new(u);
        let ac: AdoptCommit<u64> = AdoptCommit::alloc(&mut sim, "AC");
        let mut fleet: Vec<Proposer> = u
            .processes()
            .map(|p| Proposer {
                propose: ac.propose_machine(proposals(p.index())),
                outcome: None,
            })
            .collect();
        // 2n + 2 propose steps plus the Done step, round-robin.
        let schedule = round_robin(N, 2 * N + 3);
        sim.run_automata_replay(
            &mut fleet,
            &schedule,
            RunConfig::steps(schedule.len() as u64),
        )
        .unwrap();
        fleet
            .into_iter()
            .map(|m| m.outcome.expect("every process finishes its propose"))
            .collect::<Vec<_>>()
    };

    let unanimous = run(&|_| 42);
    for (i, out) in unanimous.iter().enumerate() {
        assert!(out.is_commit(), "p{i} must commit on unanimity");
        assert_eq!(*out.value(), 42);
    }

    // Conflicting proposals: coherence + validity still hold at n = 128.
    let contested = run(&|i| if i < 64 { 5 } else { 9 });
    let committed: Vec<u64> = contested
        .iter()
        .filter(|o| o.is_commit())
        .map(|o| *o.value())
        .collect();
    if let Some(&w) = committed.first() {
        for out in &contested {
            assert_eq!(*out.value(), w, "coherence: committed {w}");
        }
    }
    for out in &contested {
        assert!([5, 9].contains(out.value()), "validity");
    }
}
