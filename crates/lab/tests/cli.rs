//! CLI contract tests for `stlab`: the exit-code convention (0 clean, 1
//! invariant violation / failed expectation, 2 usage or schema errors),
//! the counterexample save/replay loop, and the fuzz verb's determinism.

use std::path::PathBuf;
use std::process::{Command, Output};

fn stlab(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_stlab"))
        .args(args)
        .output()
        .expect("stlab runs")
}

fn exit_code(out: &Output) -> i32 {
    out.status.code().expect("no signal")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("stlab-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn help_documents_the_exit_codes() {
    let out = stlab(&["--help"]);
    assert_eq!(exit_code(&out), 0);
    let text = stdout(&out);
    assert!(text.contains("EXIT CODES"));
    assert!(text.contains("0  clean"));
    assert!(text.contains("1  an invariant violation"));
    assert!(text.contains("2  usage errors"));
    assert!(text.contains("--save-counterexample"));
    assert!(text.contains("--replay"));
}

#[test]
fn unknown_scenario_is_a_usage_error() {
    let out = stlab(&["--scenario", "no-such-scenario"]);
    assert_eq!(exit_code(&out), 2);
}

#[test]
fn unknown_experiment_is_a_usage_error() {
    let out = stlab(&["e99", "--fast"]);
    assert_eq!(exit_code(&out), 2);
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown experiment"));
}

#[test]
fn out_of_range_sizes_are_usage_errors() {
    let zero = stlab(&["--fast", "--sizes", "64,0", "e9"]);
    assert_eq!(exit_code(&zero), 2);
    assert!(
        String::from_utf8_lossy(&zero.stderr).contains("at least one process"),
        "zero-size message"
    );

    let huge = stlab(&["--fast", "--sizes", "2048", "e9"]);
    assert_eq!(exit_code(&huge), 2);
    assert!(
        String::from_utf8_lossy(&huge.stderr).contains("exceeds MAX_PROCESSES (1024)"),
        "oversized message"
    );
}

#[test]
fn replay_of_a_missing_file_is_a_usage_error() {
    let out = stlab(&["--replay", "/nonexistent/ce.json"]);
    assert_eq!(exit_code(&out), 2);
}

/// The full counterexample loop: the starved fixture violates (exit 1),
/// `--save-counterexample` persists it, `--replay` re-executes it under
/// the checker and reproduces the violation (exit 1 again).
#[test]
fn starved_fixture_saves_and_replays_a_counterexample() {
    let ce = tmp("starved-ce.json");
    let out = stlab(&[
        "--scenario",
        "starved-fixture",
        "--fast",
        "--save-counterexample",
        ce.to_str().unwrap(),
    ]);
    assert_eq!(exit_code(&out), 1, "the fixture violates by design");
    assert!(ce.exists(), "counterexample file written");

    let replay = stlab(&["--replay", ce.to_str().unwrap()]);
    assert_eq!(exit_code(&replay), 1, "a reproduced violation exits 1");
    let text = stdout(&replay);
    assert!(
        text.contains("reproduced"),
        "replay verdict missing: {text}"
    );
    assert!(!text.contains("NOT reproduced"), "must actually reproduce");
}

/// The fuzz verb: finds a violation from clean seeds at the default master
/// seed (exit 1), shrinks it, and writes byte-identical corpus stores on a
/// repeat run at a different thread count.
#[test]
fn fuzz_smoke_finds_shrinks_and_is_deterministic() {
    let c1 = tmp("fuzz-corpus-1.json");
    let c2 = tmp("fuzz-corpus-2.json");
    let run1 = stlab(&[
        "fuzz",
        "--budget",
        "24",
        "--threads",
        "1",
        "--shrink",
        "--corpus",
        c1.to_str().unwrap(),
    ]);
    assert_eq!(exit_code(&run1), 1, "the default session must find");
    let text = stdout(&run1);
    assert!(text.contains("FINDING ["));
    assert!(
        text.contains("shrunk counterexample: "),
        "shrink line: {text}"
    );

    let run2 = stlab(&[
        "fuzz",
        "--budget",
        "24",
        "--threads",
        "4",
        "--corpus",
        c2.to_str().unwrap(),
    ]);
    assert_eq!(exit_code(&run2), 1);
    let bytes1 = std::fs::read(&c1).unwrap();
    let bytes2 = std::fs::read(&c2).unwrap();
    assert_eq!(bytes1, bytes2, "corpus stores differ across thread counts");
}

// ---------------------------------------------------------------------------
// `--serve`: the daemon-backed drive.
// ---------------------------------------------------------------------------

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn serve_against_nothing_is_a_typed_usage_error() {
    // Discard port: nothing listens, the up-front hello ping fails.
    let out = stlab(&["--fast", "e3", "--serve", "127.0.0.1:9"]);
    assert_eq!(exit_code(&out), 2);
    assert!(
        stderr(&out).contains("cannot reach st-serve at 127.0.0.1:9"),
        "typed connect message: {}",
        stderr(&out)
    );
}

#[test]
fn serve_with_fuzz_is_a_usage_error() {
    let out = stlab(&["fuzz", "--serve", "127.0.0.1:9"]);
    assert_eq!(exit_code(&out), 2);
    assert!(stderr(&out).contains("does not support --serve"));
}

/// A daemon whose store is from another schema version refuses the submit
/// with the store's own error text, and `stlab` surfaces it verbatim. The
/// daemon here is faked at the frame level: hello succeeds, everything
/// else gets the typed `schema-mismatch` a real daemon with a broken store
/// sends.
#[test]
fn serve_schema_mismatch_surfaces_the_stores_text() {
    use st_core::frame::{read_frame, write_frame};
    use st_core::Json;

    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut sock) = stream else { continue };
            let Ok(doc) = read_frame(&mut sock) else {
                continue;
            };
            let verb = doc.get("verb").and_then(Json::as_str).unwrap_or("");
            let resp = if verb == "hello" {
                st_serve::protocol::ok_response([("server", Json::str("fake"))])
            } else {
                let text = st_campaign::StoreError::SchemaMismatch {
                    found: "st-campaign/outcome-store-v1".into(),
                    expected: st_campaign::store::SCHEMA,
                }
                .to_string();
                st_serve::protocol::error_response(st_serve::ErrorKind::SchemaMismatch, text)
            };
            let _ = write_frame(&mut sock, &resp);
        }
    });

    let out = stlab(&["--fast", "e3", "--serve", &addr]);
    assert_eq!(exit_code(&out), 2);
    let text = stderr(&out);
    assert!(
        text.contains("st-serve refused [schema-mismatch]"),
        "typed refusal: {text}"
    );
    assert!(
        text.contains("outcome store schema mismatch"),
        "store's own text: {text}"
    );
}

/// The house invariant at the CLI level: `--fast e3` through a real daemon
/// renders byte-identical tables and records a byte-identical outcome
/// store — and the daemon's own state-dir store matches both.
#[test]
fn serve_mode_reproduces_batch_tables_and_store_bytes() {
    let state = std::env::temp_dir().join(format!("stlab-serve-state-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&state);
    let server = st_serve::Server::bind("127.0.0.1:0", st_serve::ServeConfig::new(&state)).unwrap();
    let addr = server.local_addr().to_string();
    std::thread::spawn(move || server.run());

    let batch_store = tmp("serve-batch.json");
    let served_store = tmp("serve-served.json");
    let batch = stlab(&["--fast", "e3", "--outcomes", batch_store.to_str().unwrap()]);
    assert_eq!(exit_code(&batch), 0, "{}", stderr(&batch));
    let served = stlab(&[
        "--fast",
        "e3",
        "--serve",
        &addr,
        "--outcomes",
        served_store.to_str().unwrap(),
    ]);
    assert_eq!(exit_code(&served), 0, "{}", stderr(&served));

    assert_eq!(stdout(&batch), stdout(&served), "rendered tables");
    let batch_bytes = std::fs::read(&batch_store).unwrap();
    assert_eq!(
        batch_bytes,
        std::fs::read(&served_store).unwrap(),
        "recorded store bytes"
    );
    assert_eq!(
        batch_bytes,
        std::fs::read(state.join("job-e3.store.json")).unwrap(),
        "daemon state-dir store bytes"
    );
}
