//! E2 — Figure 2 / Theorem 23: k-anti-Ω convergence in `S^k_{t+1,n}`.
//!
//! For a grid of `(n, k, t)` and schedule families, runs the Figure 2
//! algorithm and measures: stabilization step (Lemma 22), whether the final
//! common winnerset contains a correct process (Lemma 20), and whether the
//! k-anti-Ω specification held (Theorem 23). Schedules outside the system
//! (rotating starvation) are included as negative controls.

use st_core::{ProcSet, ProcessId, StepSource, Universe};
use st_fd::convergence::{certify_system_membership, kanti_omega_witness, winnerset_stabilization};
use st_fd::{KAntiOmega, KAntiOmegaConfig};
use st_sched::{CrashAfter, CrashPlan, RotatingStarvation, SeededRandom, SetTimely};
use st_sim::{RunConfig, RunReport, Sim};

use crate::config::{ExperimentResult, LabConfig};
use crate::table::Table;

fn run_fd<S: StepSource>(n: usize, k: usize, t: usize, src: &mut S, budget: u64) -> RunReport {
    let universe = Universe::new(n).unwrap();
    // Recorded so conforming rows can certify S^k_{t+1,n} membership on the
    // trace itself (see `record`).
    let mut sim = Sim::with_recording(universe, true);
    let fd = KAntiOmega::alloc(&mut sim, KAntiOmegaConfig::new(k, t));
    for p in universe.processes() {
        // The state-machine ABI: observationally identical to the async
        // transcription (st-fd differential tests), several times cheaper
        // per step — the whole grid is simulator-bound.
        sim.spawn_automaton(p, fd.machine()).unwrap();
    }
    sim.run(src, RunConfig::steps(budget)).unwrap();
    sim.report()
}

/// Runs E2.
pub fn run(cfg: &LabConfig) -> ExperimentResult {
    let mut table = Table::new([
        "n",
        "k",
        "t",
        "schedule",
        "crashes",
        "in-system",
        "stabilized@step",
        "winnerset",
        "has_correct",
        "k-anti-Ω",
    ]);
    let mut pass = true;
    let budget = cfg.budget(800_000);

    let grid: &[(usize, usize, usize)] = if cfg.fast {
        &[(3, 1, 1), (4, 1, 2), (4, 2, 2)]
    } else {
        &[
            (3, 1, 1),
            (3, 1, 2),
            (4, 1, 2),
            (4, 2, 2),
            (4, 2, 3),
            (5, 1, 3),
            (5, 2, 3),
            (5, 3, 4),
            (6, 2, 4),
        ]
    };

    for &(n, k, t) in grid {
        let universe = Universe::new(n).unwrap();
        let full = ProcSet::full(universe);
        let p: ProcSet = (0..k).map(ProcessId::new).collect();
        let q: ProcSet = (0..=t).map(ProcessId::new).collect();

        // Conforming, fault-free.
        let mut src = SetTimely::new(p, q, 2 * (t + 1), SeededRandom::new(universe, cfg.seed));
        let report = run_fd(n, k, t, &mut src, budget);
        pass &= record(
            &mut table,
            n,
            k,
            t,
            "SetTimely",
            ProcSet::EMPTY,
            &report,
            full,
            true,
        );

        // Conforming, with t crashes (crash the top-t, keeping P alive).
        if n - t >= k {
            let crashed: ProcSet = ((n - t)..n).map(ProcessId::new).collect();
            if p.is_disjoint(crashed) {
                let plan = CrashPlan::all_at(crashed, 2_000);
                let filler =
                    CrashAfter::new(SeededRandom::new(universe, cfg.seed + 1), plan.clone());
                let mut src = SetTimely::new(p, q, 2 * (t + 1), filler).with_crashes(plan);
                let report = run_fd(n, k, t, &mut src, budget);
                pass &= record(
                    &mut table,
                    n,
                    k,
                    t,
                    "SetTimely+crash",
                    crashed,
                    &report,
                    crashed.complement(universe),
                    true,
                );
            }
        }

        // Negative control: rotating starvation of k-sets (outside the
        // system) — no convergence expected.
        let mut src = RotatingStarvation::new(universe, k);
        let report = run_fd(n, k, t, &mut src, budget);
        pass &= record(
            &mut table,
            n,
            k,
            t,
            "RotatingStarvation",
            ProcSet::EMPTY,
            &report,
            full,
            false,
        );
    }

    ExperimentResult {
        id: "E2",
        title: "Figure 2 / Theorem 23 — k-anti-Ω convergence in S^k_{t+1,n}",
        tables: vec![("convergence grid".into(), table)],
        notes: vec![
            "conforming schedules: common winnerset with a correct member (Lemmas 20/22)".into(),
            "rotating starvation (negative control): no convergence in the same budget".into(),
        ],
        pass,
    }
}

#[allow(clippy::too_many_arguments)]
fn record(
    table: &mut Table,
    n: usize,
    k: usize,
    t: usize,
    schedule: &str,
    crashed: ProcSet,
    report: &RunReport,
    correct: ProcSet,
    expect_converge: bool,
) -> bool {
    let stab = winnerset_stabilization(report, correct);
    let witness = kanti_omega_witness(report, correct);
    // Membership premise, checked by the timeliness engine on the executed
    // schedule. Only meaningful (and only required) for conforming rows.
    let universe = Universe::new(n).unwrap();
    let membership = certify_system_membership(report, universe, k, t + 1, 4 * (t + 1));
    let (stab_str, ws_str, has_correct) = match stab {
        Some(s) => (
            s.step.to_string(),
            s.winnerset.to_string(),
            !s.winnerset.intersection(correct).is_empty(),
        ),
        None => ("-".into(), "-".into(), false),
    };
    table.row([
        n.to_string(),
        k.to_string(),
        t.to_string(),
        schedule.to_string(),
        crashed.len().to_string(),
        membership.map_or("no".into(), |tp| format!("yes(b={})", tp.bound)),
        stab_str,
        ws_str,
        if stab.is_some() {
            has_correct.to_string()
        } else {
            "-".into()
        },
        witness.map_or("violated".to_string(), |w| {
            format!("holds (c={})", w.trusted)
        }),
    ]);
    if expect_converge {
        membership.is_some() && stab.is_some() && has_correct && witness.is_some()
    } else {
        // The negative control row is informational: an oblivious adversary
        // is not guaranteed to defeat the detector on every finite budget
        // (the defeating schedule of the impossibility proof is adaptive —
        // see E4/E5). The row shows what happened; it never fails E2.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e2_matches_paper() {
        let result = run(&LabConfig::fast());
        assert!(result.pass, "{}", result.render());
    }
}
