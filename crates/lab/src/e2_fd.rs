//! E2 — Figure 2 / Theorem 23: k-anti-Ω convergence in `S^k_{t+1,n}`.
//!
//! For a grid of `(n, k, t)` and schedule families, runs the Figure 2
//! algorithm and measures: stabilization step (Lemma 22), whether the final
//! common winnerset contains a correct process (Lemma 20), and whether the
//! k-anti-Ω specification held (Theorem 23). Schedules outside the system
//! (rotating starvation) are included as negative controls.
//!
//! The grid is a campaign (`st-campaign`): every row is a declarative
//! [`Scenario`] — conforming/crash/starvation generator spec × the
//! FD-convergence workload on the machine-slot fast path — executed by the
//! work-stealing engine (`cfg.threads` workers, identical tables for every
//! count).

use st_campaign::{Campaign, FdAbi, FdDetector, FdOutcome, Scenario, Workload};
use st_core::{ProcSet, ProcessId, Universe};
use st_fd::TimeoutPolicy;
use st_sched::{CrashPlan, GeneratorSpec};

use crate::config::{ExperimentResult, LabConfig};
use crate::table::Table;

/// What one row of the grid expects and how it renders.
struct Row {
    n: usize,
    k: usize,
    t: usize,
    schedule: &'static str,
    crashed: ProcSet,
    correct: ProcSet,
    expect_converge: bool,
}

fn fd_workload(k: usize, t: usize) -> Workload {
    Workload::FdConvergence {
        k,
        t,
        policy: TimeoutPolicy::Increment,
        // The state-machine ABI: observationally identical to the async
        // transcription (st-fd differential tests), several times cheaper
        // per step — the whole grid is simulator-bound.
        abi: FdAbi::MachineSlot,
        detector: FdDetector::SetBased,
        // Certify S^k_{t+1,n} membership on the executed schedule itself.
        certify_membership: true,
    }
}

/// Runs E2.
pub fn run(cfg: &LabConfig) -> ExperimentResult {
    let mut table = Table::new([
        "n",
        "k",
        "t",
        "schedule",
        "crashes",
        "in-system",
        "stabilized@step",
        "winnerset",
        "has_correct",
        "k-anti-Ω",
    ]);
    let mut pass = true;
    let budget = cfg.budget(800_000);

    let grid: &[(usize, usize, usize)] = if cfg.fast {
        &[(3, 1, 1), (4, 1, 2), (4, 2, 2)]
    } else {
        &[
            (3, 1, 1),
            (3, 1, 2),
            (4, 1, 2),
            (4, 2, 2),
            (4, 2, 3),
            (5, 1, 3),
            (5, 2, 3),
            (5, 3, 4),
            (6, 2, 4),
        ]
    };

    let mut campaign = Campaign::new();
    let mut rows: Vec<Row> = Vec::new();
    for &(n, k, t) in grid {
        let universe = Universe::new(n).unwrap();
        let full = ProcSet::full(universe);
        let p: ProcSet = (0..k).map(ProcessId::new).collect();
        let q: ProcSet = (0..=t).map(ProcessId::new).collect();
        let conforming =
            GeneratorSpec::set_timely(p, q, 2 * (t + 1), GeneratorSpec::seeded_random(0));

        // Conforming, fault-free.
        campaign.push(Scenario::new(
            "conforming",
            universe,
            conforming.clone(),
            fd_workload(k, t),
            budget,
            cfg.seed,
        ));
        rows.push(Row {
            n,
            k,
            t,
            schedule: "SetTimely",
            crashed: ProcSet::EMPTY,
            correct: full,
            expect_converge: true,
        });

        // Conforming, with t crashes (crash the top-t, keeping P alive).
        if n - t >= k {
            let crashed: ProcSet = ((n - t)..n).map(ProcessId::new).collect();
            if p.is_disjoint(crashed) {
                let plan = CrashPlan::all_at(crashed, 2_000);
                let spec =
                    GeneratorSpec::set_timely(p, q, 2 * (t + 1), GeneratorSpec::seeded_random(1))
                        .crashed(plan);
                campaign.push(Scenario::new(
                    "conforming+crash",
                    universe,
                    spec,
                    fd_workload(k, t),
                    budget,
                    cfg.seed,
                ));
                rows.push(Row {
                    n,
                    k,
                    t,
                    schedule: "SetTimely+crash",
                    crashed,
                    correct: crashed.complement(universe),
                    expect_converge: true,
                });
            }
        }

        // Negative control: rotating starvation of k-sets (outside the
        // system) — no convergence expected.
        campaign.push(Scenario::new(
            "starvation",
            universe,
            GeneratorSpec::RotatingStarvation { k, base: 8 },
            fd_workload(k, t),
            budget,
            cfg.seed,
        ));
        rows.push(Row {
            n,
            k,
            t,
            schedule: "RotatingStarvation",
            crashed: ProcSet::EMPTY,
            correct: full,
            expect_converge: false,
        });
    }

    let outcomes = cfg.run_campaign("e2", &campaign);
    pass &= crate::config::violation_free(&outcomes);
    for (row, outcome) in rows.iter().zip(&outcomes) {
        let fd = outcome.data.as_fd().expect("FD campaign");
        pass &= record(&mut table, row, fd);
    }

    ExperimentResult {
        id: "E2",
        title: "Figure 2 / Theorem 23 — k-anti-Ω convergence in S^k_{t+1,n}",
        tables: vec![("convergence grid".into(), table)],
        notes: vec![
            "conforming schedules: common winnerset with a correct member (Lemmas 20/22)".into(),
            "rotating starvation (negative control): no convergence in the same budget".into(),
        ],
        pass,
    }
}

fn record(table: &mut Table, row: &Row, fd: &FdOutcome) -> bool {
    let (stab_str, ws_str, has_correct) = match fd.stabilization {
        Some(s) => (
            s.step.to_string(),
            s.winnerset.to_string(),
            !s.winnerset.intersection(row.correct).is_empty(),
        ),
        None => ("-".into(), "-".into(), false),
    };
    table.row([
        row.n.to_string(),
        row.k.to_string(),
        row.t.to_string(),
        row.schedule.to_string(),
        row.crashed.len().to_string(),
        fd.membership
            .map_or("no".into(), |tp| format!("yes(b={})", tp.bound)),
        stab_str,
        ws_str,
        if fd.stabilization.is_some() {
            has_correct.to_string()
        } else {
            "-".into()
        },
        fd.witness.map_or("violated".to_string(), |w| {
            format!("holds (c={})", w.trusted)
        }),
    ]);
    if row.expect_converge {
        fd.membership.is_some() && fd.stabilization.is_some() && has_correct && fd.witness.is_some()
    } else {
        // The negative control row is informational: an oblivious adversary
        // is not guaranteed to defeat the detector on every finite budget
        // (the defeating schedule of the impossibility proof is adaptive —
        // see E4/E5). The row shows what happened; it never fails E2.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e2_matches_paper() {
        let result = run(&LabConfig::fast());
        assert!(result.pass, "{}", result.render());
        // Golden: the campaign port reproduces the pre-port tables byte for
        // byte at the fixed seed.
        // (The golden file was captured via `stlab`, whose `println!` adds
        // one trailing newline to the render.)
        assert_eq!(
            format!("{}\n", result.render()),
            include_str!("../tests/golden/e2_fast.txt"),
            "E2 output drifted from the golden table"
        );
    }
}
