//! E7 — ablations of the design choices DESIGN.md calls out.
//!
//! 1. **Timeout policy** (Figure 2 line 17): the paper's increment-by-one
//!    versus doubling. Doubling reaches a sufficient timeout in
//!    exponentially fewer expirations, so convergence should come earlier in
//!    steps, at the cost of overshooting timeouts.
//! 2. **Synchrony quality**: stabilization step as a function of the
//!    enforced timeliness bound of the schedule — worse bounds (weaker
//!    synchrony) must push convergence later, tracing the "cost of partial
//!    synchrony" curve.
//!
//! Both ablations are one campaign: policy and bound axes become scenarios
//! over the FD-convergence workload on the typed machine fleet (the
//! state-machine fast path, differentially equal to the async port) and run
//! in parallel — the multi-million-step sweeps are where `--threads`
//! actually pays.

use st_campaign::{Campaign, FdAbi, FdDetector, Scenario, Workload};
use st_core::{ProcSet, ProcessId};
use st_fd::TimeoutPolicy;
use st_sched::GeneratorSpec;

use crate::config::{ExperimentResult, LabConfig};
use crate::table::Table;

fn fleet_workload(k: usize, t: usize, policy: TimeoutPolicy) -> Workload {
    Workload::FdConvergence {
        k,
        t,
        policy,
        abi: FdAbi::MachineFleet,
        detector: FdDetector::SetBased,
        certify_membership: false,
    }
}

/// Runs E7.
pub fn run(cfg: &LabConfig) -> ExperimentResult {
    let mut pass = true;

    let (n, k, t) = (4usize, 1usize, 2usize);
    let universe = st_core::Universe::new(n).unwrap();
    let p = ProcSet::from_indices([0]);
    let q: ProcSet = (0..=t).map(ProcessId::new).collect();
    let loose_bound = if cfg.fast { 24 } else { 48 };
    let policies = [TimeoutPolicy::Increment, TimeoutPolicy::Double];
    let bounds: &[usize] = if cfg.fast {
        &[4, 16]
    } else {
        &[4, 8, 16, 32, 64]
    };

    // Ablation 1: timeout policy, at a deliberately loose schedule bound so
    // that timers must grow substantially before convergence.
    let mut campaign = Campaign::new();
    for policy in policies {
        campaign.push(Scenario::new(
            "policy",
            universe,
            GeneratorSpec::set_timely(p, q, loose_bound, GeneratorSpec::seeded_random(0)),
            fleet_workload(k, t, policy),
            cfg.budget(6_000_000),
            cfg.seed,
        ));
    }
    // Ablation 2: synchrony quality sweep (paper policy).
    for &bound in bounds {
        campaign.push(Scenario::new(
            "bound",
            universe,
            GeneratorSpec::set_timely(p, q, bound, GeneratorSpec::seeded_random(1)),
            fleet_workload(k, t, TimeoutPolicy::Increment),
            cfg.budget(8_000_000),
            cfg.seed,
        ));
    }
    let outcomes = cfg.run_campaign("e7", &campaign);
    pass &= crate::config::violation_free(&outcomes);
    let stabs: Vec<Option<u64>> = outcomes
        .iter()
        .map(|o| {
            o.data
                .as_fd()
                .expect("FD campaign")
                .stabilization
                .map(|s| s.step)
        })
        .collect();
    let (policy_stabs, bound_stabs) = stabs.split_at(policies.len());

    let mut policy_table = Table::new(["n", "k", "t", "bound", "policy", "stabilized@step"]);
    for (policy, stab) in policies.iter().zip(policy_stabs) {
        policy_table.row([
            n.to_string(),
            k.to_string(),
            t.to_string(),
            loose_bound.to_string(),
            format!("{policy:?}"),
            stab.map_or("-".into(), |s| s.to_string()),
        ]);
    }
    // Both must converge; doubling must not be slower.
    pass &= policy_stabs.iter().all(|r| r.is_some());
    if let [Some(inc), Some(dbl)] = policy_stabs[..] {
        pass &= dbl <= inc;
    }

    let mut sweep_table = Table::new(["bound", "stabilized@step"]);
    let mut prev: Option<u64> = None;
    let mut monotone_violations = 0usize;
    for (&bound, &stab) in bounds.iter().zip(bound_stabs) {
        sweep_table.row([
            bound.to_string(),
            stab.map_or("-".into(), |s| s.to_string()),
        ]);
        pass &= stab.is_some();
        if let (Some(prev_s), Some(s)) = (prev, stab) {
            // Stabilization tracks the *observed* worst gap of the filler,
            // which saturates once the enforced cap exceeds it: large bounds
            // plateau. Count only genuine decreases (beyond 5% of the
            // plateau level) as inversions.
            if s < prev_s - prev_s / 20 {
                monotone_violations += 1;
            }
        }
        prev = stab;
    }
    // The trend must be non-decreasing up to the plateau (tolerate one
    // genuine local inversion from scheduling noise).
    pass &= monotone_violations <= 1;

    ExperimentResult {
        id: "E7",
        title: "Ablations — timeout policy and synchrony quality",
        tables: vec![
            ("timeout policy (Figure 2 line 17)".into(), policy_table),
            ("stabilization vs schedule bound".into(), sweep_table),
        ],
        notes: vec![
            "doubling converges no later than increment at loose bounds".into(),
            "weaker synchrony (larger bound) delays convergence until the filler's \
             observed worst gap, not the enforced cap, dominates (plateau)"
                .into(),
        ],
        pass,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e7_matches_expectations() {
        let result = run(&LabConfig::fast());
        assert!(result.pass, "{}", result.render());
        // Golden: the campaign port reproduces the pre-port tables byte for
        // byte at the fixed seed (trailing newline from the capture).
        assert_eq!(
            format!("{}\n", result.render()),
            include_str!("../tests/golden/e7_fast.txt"),
            "E7 output drifted from the golden table"
        );
    }
}
