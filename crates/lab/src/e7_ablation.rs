//! E7 — ablations of the design choices DESIGN.md calls out.
//!
//! 1. **Timeout policy** (Figure 2 line 17): the paper's increment-by-one
//!    versus doubling. Doubling reaches a sufficient timeout in
//!    exponentially fewer expirations, so convergence should come earlier in
//!    steps, at the cost of overshooting timeouts.
//! 2. **Synchrony quality**: stabilization step as a function of the
//!    enforced timeliness bound of the schedule — worse bounds (weaker
//!    synchrony) must push convergence later, tracing the "cost of partial
//!    synchrony" curve.

use st_core::{ProcSet, ProcessId, StepSource, Universe};
use st_fd::convergence::winnerset_stabilization;
use st_fd::{KAntiOmega, KAntiOmegaConfig, TimeoutPolicy};
use st_sched::{SeededRandom, SetTimely};
use st_sim::{RunConfig, Sim};

use crate::config::{ExperimentResult, LabConfig};
use crate::table::Table;

fn stabilization_step<S: StepSource>(
    n: usize,
    k: usize,
    t: usize,
    policy: TimeoutPolicy,
    src: &mut S,
    budget: u64,
) -> Option<u64> {
    let universe = Universe::new(n).unwrap();
    let mut sim = Sim::new(universe);
    let fd = KAntiOmega::alloc(&mut sim, KAntiOmegaConfig::new(k, t).with_policy(policy));
    // Typed fleet on the state-machine fast path (differentially equal to
    // the async port); the ablation sweeps multi-million-step budgets.
    let mut fleet: Vec<_> = universe.processes().map(|_| fd.machine()).collect();
    sim.run_automata(&mut fleet, src, RunConfig::steps(budget))
        .unwrap();
    winnerset_stabilization(&sim.report(), ProcSet::full(universe)).map(|s| s.step)
}

/// Runs E7.
pub fn run(cfg: &LabConfig) -> ExperimentResult {
    let mut pass = true;

    // Ablation 1: timeout policy, at a deliberately loose schedule bound so
    // that timers must grow substantially before convergence.
    let mut policy_table = Table::new(["n", "k", "t", "bound", "policy", "stabilized@step"]);
    let (n, k, t) = (4usize, 1usize, 2usize);
    let universe = Universe::new(n).unwrap();
    let p = ProcSet::from_indices([0]);
    let q: ProcSet = (0..=t).map(ProcessId::new).collect();
    let loose_bound = if cfg.fast { 24 } else { 48 };
    let mut results = Vec::new();
    for policy in [TimeoutPolicy::Increment, TimeoutPolicy::Double] {
        let mut src = SetTimely::new(p, q, loose_bound, SeededRandom::new(universe, cfg.seed));
        let stab = stabilization_step(n, k, t, policy, &mut src, cfg.budget(6_000_000));
        policy_table.row([
            n.to_string(),
            k.to_string(),
            t.to_string(),
            loose_bound.to_string(),
            format!("{policy:?}"),
            stab.map_or("-".into(), |s| s.to_string()),
        ]);
        results.push(stab);
    }
    // Both must converge; doubling must not be slower.
    pass &= results.iter().all(|r| r.is_some());
    if let [Some(inc), Some(dbl)] = results[..] {
        pass &= dbl <= inc;
    }

    // Ablation 2: synchrony quality sweep (paper policy).
    let mut sweep_table = Table::new(["bound", "stabilized@step"]);
    let bounds: &[usize] = if cfg.fast {
        &[4, 16]
    } else {
        &[4, 8, 16, 32, 64]
    };
    let mut prev: Option<u64> = None;
    let mut monotone_violations = 0usize;
    for &bound in bounds {
        let mut src = SetTimely::new(p, q, bound, SeededRandom::new(universe, cfg.seed + 1));
        let stab = stabilization_step(
            n,
            k,
            t,
            TimeoutPolicy::Increment,
            &mut src,
            cfg.budget(8_000_000),
        );
        sweep_table.row([
            bound.to_string(),
            stab.map_or("-".into(), |s| s.to_string()),
        ]);
        pass &= stab.is_some();
        if let (Some(prev_s), Some(s)) = (prev, stab) {
            // Stabilization tracks the *observed* worst gap of the filler,
            // which saturates once the enforced cap exceeds it: large bounds
            // plateau. Count only genuine decreases (beyond 5% of the
            // plateau level) as inversions.
            if s < prev_s - prev_s / 20 {
                monotone_violations += 1;
            }
        }
        prev = stab;
    }
    // The trend must be non-decreasing up to the plateau (tolerate one
    // genuine local inversion from scheduling noise).
    pass &= monotone_violations <= 1;

    ExperimentResult {
        id: "E7",
        title: "Ablations — timeout policy and synchrony quality",
        tables: vec![
            ("timeout policy (Figure 2 line 17)".into(), policy_table),
            ("stabilization vs schedule bound".into(), sweep_table),
        ],
        notes: vec![
            "doubling converges no later than increment at loose bounds".into(),
            "weaker synchrony (larger bound) delays convergence until the filler's \
             observed worst gap, not the enforced cap, dominates (plateau)"
                .into(),
        ],
        pass,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e7_matches_expectations() {
        let result = run(&LabConfig::fast());
        assert!(result.pass, "{}", result.render());
    }
}
