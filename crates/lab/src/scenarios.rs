//! The named fault-injection scenario catalog behind `stlab --scenario`.
//!
//! Each entry names a fault shape from the paper's world — flapping
//! timeliness, gray failure, burst clogging, crash with recovery, the
//! adaptive adversary — and builds a small campaign over the full stack
//! (`n = 5`, `t = 2`, `k = 2`) with the always-on
//! [`InvariantChecker`](st_campaign::InvariantChecker). `SCENARIOS.md` at
//! the repo root documents the catalog; `stlab --list-scenarios` prints it.
//!
//! One entry, [`starved-fixture`](CATALOG), is an *intentional* violation:
//! its generator owes termination (a root set-timely guarantee) but its
//! budget forbids a decision, so the checker records a
//! [`Termination`](st_campaign::InvariantViolation::Termination) violation
//! and pins the executed schedule as a replayable counterexample. CI runs
//! it to prove the checker actually fires; `stlab` exits non-zero whenever
//! any violation is recorded, so this entry never exits zero.

use st_campaign::{Campaign, FdAbi, FdDetector, OutcomeData, Scenario, ScenarioOutcome, Workload};
use st_core::{ProcSet, ProcessId, Value};
use st_fd::TimeoutPolicy;
use st_sched::GeneratorSpec;

use crate::config::LabConfig;

/// One named scenario in the catalog.
pub struct CatalogEntry {
    /// The `--scenario` name.
    pub name: &'static str,
    /// The fault shape, one line.
    pub fault: &'static str,
    /// Which invariants the checker arms on this entry.
    pub invariants: &'static str,
    /// Whether the entry is an intentional-violation fixture (so a recorded
    /// violation is the *expected* outcome; the exit code is still
    /// non-zero).
    pub expect_violation: bool,
    build: fn(&LabConfig) -> Campaign,
}

/// The shared task shape: `n = 5` processes, resilience `t = 2`, agreement
/// degree `k = 2`, with `P = {0, 1}`, `Q = {0, 1, 2}`, bound `2(t+1)`.
const N: usize = 5;
const T: usize = 2;
const K: usize = 2;
const BOUND: usize = 2 * (T + 1);

pub(crate) fn p() -> ProcSet {
    ProcSet::from_indices([0, 1])
}

pub(crate) fn q() -> ProcSet {
    ProcSet::from_indices([0, 1, 2])
}

fn inputs() -> Vec<Value> {
    (0..N as Value).map(|v| 1000 + 7 * v).collect()
}

pub(crate) fn universe() -> st_core::Universe {
    st_core::Universe::new(N).unwrap()
}

pub(crate) fn fd_workload() -> Workload {
    Workload::FdConvergence {
        k: K,
        t: T,
        policy: TimeoutPolicy::Increment,
        abi: FdAbi::MachineSlot,
        detector: FdDetector::SetBased,
        certify_membership: false,
    }
}

pub(crate) fn agreement_workload() -> Workload {
    Workload::Agreement {
        t: T,
        k: K,
        inputs: inputs(),
        policy: TimeoutPolicy::Increment,
        certify: None,
    }
}

pub(crate) fn conforming() -> GeneratorSpec {
    GeneratorSpec::set_timely(p(), q(), BOUND, GeneratorSpec::seeded_random(0))
}

/// Both workloads over one generator spec, two seeds each.
fn both_workloads(cfg: &LabConfig, name: &str, spec: GeneratorSpec) -> Campaign {
    let budget = cfg.budget(1_000_000);
    let mut campaign = Campaign::new();
    for workload in [fd_workload(), agreement_workload()] {
        for offset in 0..2u64 {
            let kind = match &workload {
                Workload::FdConvergence { .. } => "fd",
                _ => "agreement",
            };
            campaign.push(Scenario::new(
                format!("{name}/{kind}/seed{offset}"),
                universe(),
                spec.clone(),
                workload.clone(),
                budget,
                cfg.seed.wrapping_add(offset),
            ));
        }
    }
    campaign
}

fn baseline(cfg: &LabConfig) -> Campaign {
    both_workloads(cfg, "baseline", conforming())
}

fn flapping(cfg: &LabConfig) -> Campaign {
    both_workloads(
        cfg,
        "flapping",
        GeneratorSpec::flapping(
            p(),
            q(),
            BOUND,
            GeneratorSpec::seeded_random(0),
            (60, 120),
            (20, 60),
        ),
    )
}

fn gray(cfg: &LabConfig) -> Campaign {
    both_workloads(
        cfg,
        "gray",
        GeneratorSpec::gray_failure(conforming(), ProcSet::from_indices([4]), 8),
    )
}

fn clog(cfg: &LabConfig) -> Campaign {
    both_workloads(
        cfg,
        "clog",
        GeneratorSpec::burst_clog(conforming(), ProcessId::new(4), 40, (80, 160)),
    )
}

fn crash_recovery(cfg: &LabConfig) -> Campaign {
    both_workloads(
        cfg,
        "crash-recovery",
        GeneratorSpec::crash_recovery(conforming(), ProcessId::new(4), 2_000, 6_000),
    )
}

fn adversarial(cfg: &LabConfig) -> Campaign {
    // The adaptive adversary constructs its own schedule; the checker arms
    // nothing and the outcome's own `safe`/`blocked` verdicts carry the
    // judgment (Theorem 27's unsolvable side).
    let mut campaign = Campaign::new();
    campaign.push(Scenario::new(
        "adversarial/k2",
        universe(),
        GeneratorSpec::round_robin(),
        Workload::AdversarialAgreement {
            t: T,
            k: K,
            inputs: inputs(),
            policy: TimeoutPolicy::Increment,
            precrashed: ProcSet::EMPTY,
            witness: Some((p(), q())),
        },
        cfg.budget(400_000),
        cfg.seed,
    ));
    campaign
}

fn starved_fixture(cfg: &LabConfig) -> Campaign {
    // A root set-timely guarantee makes termination owed; 40 steps make it
    // impossible. Deliberately NOT scaled by `cfg.budget` — the starvation
    // is the point.
    let mut campaign = Campaign::new();
    campaign.push(Scenario::new(
        "starved-fixture/agreement",
        universe(),
        conforming(),
        agreement_workload(),
        40,
        cfg.seed,
    ));
    campaign
}

/// The catalog, in `--list-scenarios` order.
pub const CATALOG: &[CatalogEntry] = &[
    CatalogEntry {
        name: "baseline",
        fault: "none — conforming set-timely schedule",
        invariants: "guarantee, termination, k-agreement, validity, ballots",
        expect_violation: false,
        build: baseline,
    },
    CatalogEntry {
        name: "flapping",
        fault: "timeliness flaps timely<->untimely with seeded dwell times",
        invariants: "k-agreement, validity, ballots, accusation sanity",
        expect_violation: false,
        build: flapping,
    },
    CatalogEntry {
        name: "gray",
        fault: "gray failure — p4 slow (8x stretched) but live",
        invariants: "k-agreement, validity, ballots, accusation sanity",
        expect_violation: false,
        build: gray,
    },
    CatalogEntry {
        name: "clog",
        fault: "burst clogging — p4 monopolizes the schedule in seeded windows",
        invariants: "k-agreement, validity, ballots, accusation sanity",
        expect_violation: false,
        build: clog,
    },
    CatalogEntry {
        name: "crash-recovery",
        fault: "p4 crashes at step 2000, rejoins at 6000",
        invariants: "crash-window absence, k-agreement, validity, ballots",
        expect_violation: false,
        build: crash_recovery,
    },
    CatalogEntry {
        name: "adversarial",
        fault: "adaptive adversary schedule (Theorem 27 unsolvable side)",
        invariants: "none armed — the outcome's safe/blocked verdicts judge",
        expect_violation: false,
        build: adversarial,
    },
    CatalogEntry {
        name: "starved-fixture",
        fault: "intentional: termination owed, budget of 40 steps forbids it",
        invariants: "termination (fires by design; exit is non-zero)",
        expect_violation: true,
        build: starved_fixture,
    },
];

/// Looks an entry up by name.
pub fn find(name: &str) -> Option<&'static CatalogEntry> {
    CATALOG.iter().find(|e| e.name == name)
}

/// The result of running one catalog entry.
pub struct ScenarioReport {
    /// The entry's name.
    pub name: &'static str,
    /// Whether a violation is the intended outcome.
    pub expect_violation: bool,
    /// The campaign's scenarios, in rank order (kept so violating cells can
    /// be packaged as saveable counterexamples).
    pub scenarios: Vec<Scenario>,
    /// The campaign's outcomes, in rank order.
    pub outcomes: Vec<ScenarioOutcome>,
}

/// Runs a catalog entry as a campaign (checker on — `Scenario::run` is the
/// only path) under the lab configuration, recording under the campaign
/// key `scenario:<name>` when a session is attached.
pub fn run_entry(entry: &'static CatalogEntry, cfg: &LabConfig) -> ScenarioReport {
    let campaign = (entry.build)(cfg);
    let outcomes = cfg.run_campaign(&format!("scenario:{}", entry.name), &campaign);
    ScenarioReport {
        name: entry.name,
        expect_violation: entry.expect_violation,
        scenarios: campaign.scenarios().to_vec(),
        outcomes,
    }
}

impl ScenarioReport {
    /// Total violations across the campaign.
    pub fn violation_count(&self) -> usize {
        self.outcomes.iter().map(|o| o.violations.len()).sum()
    }

    /// The first violating cell as a saveable
    /// [`Counterexample`](st_campaign::Counterexample), if any violated.
    pub fn first_counterexample(&self) -> Option<st_campaign::Counterexample> {
        self.outcomes
            .iter()
            .zip(&self.scenarios)
            .find(|(o, _)| !o.violations.is_empty())
            .and_then(|(o, s)| st_campaign::Counterexample::new(s.clone(), o.clone()))
    }

    /// Renders the report: one line per scenario cell, then every violation
    /// with its replayable counterexample schedule.
    pub fn render(&self) -> String {
        let mut out = format!("== scenario {} ==\n", self.name);
        for o in &self.outcomes {
            out.push_str(&format!(
                "  {:<32} {:<12} violations: {}\n",
                o.label,
                summarize(&o.data),
                o.violations.len()
            ));
        }
        for o in &self.outcomes {
            for v in &o.violations {
                out.push_str(&format!("  VIOLATION [{}]: {v}\n", o.label));
            }
            if let Some(s) = &o.counterexample {
                let preview: Vec<String> = s
                    .iter()
                    .take(16)
                    .map(|p| format!("p{}", p.index()))
                    .collect();
                let ellipsis = if s.len() > 16 { " ..." } else { "" };
                out.push_str(&format!(
                    "  counterexample schedule ({} steps, replayable): {}{ellipsis}\n",
                    s.len(),
                    preview.join(" ")
                ));
            }
        }
        let verdict = match (self.violation_count(), self.expect_violation) {
            (0, false) => "CLEAN (no invariant violated)",
            (_, false) => "VIOLATED",
            (0, true) => "BROKEN FIXTURE (expected a violation, none recorded)",
            (_, true) => "VIOLATED (as intended by this fixture)",
        };
        out.push_str(&format!("verdict: {verdict}\n"));
        out
    }
}

fn summarize(data: &OutcomeData) -> String {
    match data {
        OutcomeData::Fd(f) => format!("{:?}", f.status),
        OutcomeData::Agreement(a) => match a.decided_at {
            Some(step) => format!("decided@{step}"),
            None => format!("{:?}", a.status),
        },
        OutcomeData::Adversarial(a) => {
            if a.blocked {
                "blocked".to_string()
            } else {
                format!("decided {}", a.decided)
            }
        }
        OutcomeData::Bg(b) => format!("{:?}", b.status),
        OutcomeData::Lean(l) => match &l.stabilization {
            Some(s) => format!("leader p{}@{}", s.leader, s.step),
            None => format!("{:?}", l.status),
        },
        OutcomeData::WideFd(w) => match &w.stabilization {
            Some(s) => format!("winnerset |{}|@{}", s.members.len(), s.step),
            None => format!("{:?}", w.status),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_campaign::InvariantViolation;

    #[test]
    fn catalog_names_are_unique_and_findable() {
        for (i, e) in CATALOG.iter().enumerate() {
            assert!(find(e.name).is_some());
            assert!(
                !CATALOG[..i].iter().any(|o| o.name == e.name),
                "duplicate catalog name {}",
                e.name
            );
        }
        assert!(find("no-such-scenario").is_none());
    }

    #[test]
    fn baseline_is_clean_in_fast_mode() {
        let report = run_entry(find("baseline").unwrap(), &LabConfig::fast());
        assert_eq!(report.violation_count(), 0, "{}", report.render());
        assert!(report.render().contains("CLEAN"));
    }

    #[test]
    fn starved_fixture_records_violation_and_counterexample() {
        let report = run_entry(find("starved-fixture").unwrap(), &LabConfig::fast());
        assert!(report.violation_count() > 0);
        assert!(report.outcomes.iter().any(|o| {
            o.violations
                .iter()
                .any(|v| matches!(v, InvariantViolation::Termination { .. }))
                && o.counterexample.is_some()
        }));
        let rendered = report.render();
        assert!(rendered.contains("counterexample schedule"));
        assert!(rendered.contains("as intended"));
    }
}
