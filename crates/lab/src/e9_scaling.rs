//! E9 — n-scaling: the lean O(n)-state stack at n ∈ {64, 256, 1024}.
//!
//! Every other experiment lives at paper scale (n ≤ 6) where the
//! `ProcSet`-based detectors apply. This experiment scales the *lean*
//! stack — `LeanOmega` (k = 1 anti-Ω with O(n) per-process state) and
//! `LeanConsensus` on top of it — to universe sizes beyond
//! `st_core::PROCSET_CAPACITY`, and runs every cell **twice**: once on the
//! plain fleet-replay drive and once on the struct-of-arrays drive
//! (`run_automata_replay_soa`). The two rows of a pair must be
//! *observationally identical* — same status, stabilization, publication
//! counts, decisions — which makes the experiment a standing large-n
//! differential test of the SoA drive on top of its unit/property suites.
//!
//! Schedule shape: [`GeneratorSpec::bursty`] with a dwell of one full lean
//! FD iteration (n² + n + 2 steps), so each turn completes a whole
//! heartbeat scan uncontended. One rotation is then ~n³ fleet steps, which
//! is why n = 1024 rows are **budget-bounded informational**: a rotation
//! would be ~10⁹ steps, so those rows run a fixed budget, are checked for
//! invariant violations, and are exempt from the stabilization/decision
//! expectations (rendered as `cap` in the expectation column).
//!
//! The size axis is `LabConfig::sizes()`: `{64}` in fast mode,
//! `{64, 256, 1024}` in full mode, `stlab --sizes` to override.
//!
//! # The paper's detector beyond the wall
//!
//! A second grid runs the *paper's* `KAntiOmega` (Figure 2, full `Π^k_n`
//! counter matrix) — not the lean O(n) variant — at every size on the axis
//! up to n = 256, on `WideProcSet` universes wider than one word. These
//! are the first runs of the verbatim paper protocol past
//! `PROCSET_CAPACITY`; the same (plain, SoA) pairing applies. k = 1 rows
//! are expected to stabilize within four bursty rotations; k = 2 rows
//! (full mode only — `|Π²_n|·n` steps per iteration is test-suite hostile)
//! follow the same budget-cap rule as the lean grid. Sizes above 256 are
//! skipped: one k = 1 rotation is `(n² + n + 1)·n ≈ 10⁹` steps at
//! n = 1024, past the budget cap before the detector finishes a transient.

use st_campaign::{Campaign, FleetReplayDrive, LeanOutcome, Scenario, Workload};
use st_core::Universe;
use st_fd::TimeoutPolicy;
use st_sched::GeneratorSpec;

use crate::config::{ExperimentResult, LabConfig};
use crate::table::Table;

/// Budget ceiling per row: large enough for every expected-to-converge
/// cell at n ≤ 256, small enough that a materialized replay schedule
/// (4 bytes/step) stays in the hundreds of megabytes.
const BUDGET_CAP: u64 = 128_000_000;

/// Budget for rows whose universe is so large a single rotation exceeds
/// the cap — informational cells, run for violation-checking only.
const INFORMATIONAL_BUDGET: u64 = 16_000_000;

struct Row {
    n: usize,
    workload: &'static str,
    drive: &'static str,
    /// Whether the budget covers the rotations stabilization needs.
    expect: bool,
}

/// The dwell of one full lean FD iteration: the n-heartbeat scan (n² reads
/// at one read per step amortized), the leader computation, and the
/// decision-scan slack the consensus machine adds.
fn burst(n: usize) -> u64 {
    (n * n + n + 2) as u64
}

fn budgets(n: usize) -> (u64, u64, bool) {
    let rotation = burst(n) * n as u64;
    // The lean FD's counter matrix equalizes over a ~3-iteration transient
    // (initial timeouts are 1, so iteration one accuses everyone; the
    // staircase of mid-rotation counter states flaps the argmin once
    // before it settles) — four rotations are one of margin. Consensus
    // additionally needs the leader's decision to spread: six.
    let conv = 4 * rotation;
    let agree = 6 * rotation;
    if rotation > BUDGET_CAP {
        (INFORMATIONAL_BUDGET, INFORMATIONAL_BUDGET, false)
    } else {
        (
            conv.min(BUDGET_CAP),
            agree.min(BUDGET_CAP),
            agree <= BUDGET_CAP,
        )
    }
}

/// Runs E9.
pub fn run(cfg: &LabConfig) -> ExperimentResult {
    let mut table = Table::new([
        "n",
        "workload",
        "drive",
        "budget",
        "status",
        "stabilized@step",
        "leader",
        "pubs",
        "late_flaps",
        "decided",
        "distinct",
        "expectation",
    ]);
    let mut pass = true;

    let t_of = |n: usize| (n / 16).max(1); // same resilience fraction at every size
    let drives = [
        ("plain", FleetReplayDrive::Plain),
        ("soa", FleetReplayDrive::Soa { slice_len: 64 }),
    ];

    let mut campaign = Campaign::new();
    let mut rows: Vec<Row> = Vec::new();
    for &n in &cfg.sizes() {
        let universe = Universe::new(n).expect("size axis within MAX_PROCESSES");
        let (conv_budget, agree_budget, expect) = budgets(n);
        let spec = GeneratorSpec::bursty(burst(n));
        for (drive_name, drive) in drives {
            campaign.push(Scenario::new(
                format!("n{n}/convergence/{drive_name}"),
                universe,
                spec.clone(),
                Workload::LeanConvergence {
                    t: t_of(n),
                    policy: TimeoutPolicy::Increment,
                    drive,
                },
                conv_budget,
                cfg.seed,
            ));
            rows.push(Row {
                n,
                workload: "convergence",
                drive: drive_name,
                expect,
            });
        }
        for (drive_name, drive) in drives {
            campaign.push(Scenario::new(
                format!("n{n}/agreement/{drive_name}"),
                universe,
                spec.clone(),
                Workload::LeanAgreement {
                    t: t_of(n),
                    policy: TimeoutPolicy::Increment,
                    drive,
                },
                agree_budget,
                cfg.seed,
            ));
            rows.push(Row {
                n,
                workload: "agreement",
                drive: drive_name,
                expect,
            });
        }
    }

    let outcomes = cfg.run_campaign("e9", &campaign);
    pass &= crate::config::violation_free(&outcomes);

    let mut notes = Vec::new();
    for (pair, outcome_pair) in rows.chunks(2).zip(outcomes.chunks(2)) {
        // Rows come in (plain, soa) pairs per (n, workload) cell; the SoA
        // drive must be observationally identical to the plain drive.
        let (row, lean) = (&pair[0], lean_of(&outcome_pair[0].data));
        let soa_lean = lean_of(&outcome_pair[1].data);
        let identical = lean == soa_lean;
        pass &= identical;
        if !identical {
            notes.push(format!(
                "DRIVE DIVERGENCE at n={} {}: plain {:?} vs soa {:?}",
                row.n, row.workload, lean, soa_lean
            ));
        }
        for (r, o) in pair.iter().zip(outcome_pair) {
            let l = lean_of(&o.data);
            pass &= record(&mut table, r, l, o.label.contains("convergence"));
        }
    }
    notes.push(format!(
        "size axis {:?}; every (n, workload) cell runs plain and SoA fleet drives — rows must match",
        cfg.sizes()
    ));
    notes.push(
        "n = 1024 rows (full mode) are budget-bounded informational: a single bursty rotation \
         exceeds the budget cap, so they are violation-checked but exempt from stabilization"
            .into(),
    );

    let (wide_table, wide_pass) = run_wide_grid(cfg, &mut notes);
    pass &= wide_pass;

    ExperimentResult {
        id: "E9",
        title: "n-scaling — the lean O(n)-state stack beyond PROCSET_CAPACITY",
        tables: vec![
            ("n-scaling grid".into(), table),
            (
                "paper-detector n-scaling (KAntiOmega, wide sets)".into(),
                wide_table,
            ),
        ],
        notes,
        pass,
    }
}

/// Largest universe the wide paper-detector grid runs at: one k = 1
/// rotation at n = 1024 exceeds [`BUDGET_CAP`] before the transient ends.
const WIDE_MAX_N: usize = 256;

struct WideRow {
    n: usize,
    k: usize,
    drive: &'static str,
    budget: u64,
    expect: bool,
}

/// One full Figure 2 loop iteration for the width-generic detector:
/// `|Π^k_n|·n` counter reads + 1 heartbeat write + `n` heartbeat reads
/// (`KAntiOmega::steps_per_iteration(0)`).
fn wide_iteration(n: usize, k: usize) -> u64 {
    st_core::subsets::binomial(n, k) * n as u64 + 1 + n as u64
}

fn wide_budget(n: usize, k: usize) -> (u64, bool) {
    let rotation = wide_iteration(n, k) * n as u64;
    let conv = 4 * rotation;
    if rotation > BUDGET_CAP {
        (INFORMATIONAL_BUDGET, false)
    } else {
        (conv.min(BUDGET_CAP), conv <= BUDGET_CAP)
    }
}

/// The paper-detector half of E9: `Workload::WideFdConvergence` cells in
/// (plain, soa) pairs over the size axis clamped to [`WIDE_MAX_N`].
fn run_wide_grid(cfg: &LabConfig, notes: &mut Vec<String>) -> (Table, bool) {
    let mut table = Table::new([
        "n",
        "k",
        "drive",
        "budget",
        "status",
        "stabilized@step",
        "winnerset",
        "pubs",
        "late_flaps",
        "expectation",
    ]);
    let mut pass = true;

    let t_of = |n: usize| (n / 16).max(1);
    let drives = [
        ("plain", FleetReplayDrive::Plain),
        ("soa", FleetReplayDrive::Soa { slice_len: 64 }),
    ];
    // k = 2 squares the per-iteration cost (`|Π²_n|·n`): paper-grade runs
    // only.
    let ks: &[usize] = if cfg.fast { &[1] } else { &[1, 2] };

    let mut campaign = Campaign::new();
    let mut rows: Vec<WideRow> = Vec::new();
    for &n in &cfg.sizes() {
        if n > WIDE_MAX_N {
            continue;
        }
        let universe = Universe::new(n).expect("size axis within MAX_PROCESSES");
        for &k in ks {
            if k == 2 && n > 128 {
                continue; // one k = 2 rotation at n = 256 dwarfs the cap
            }
            let (budget, expect) = wide_budget(n, k);
            let spec = GeneratorSpec::bursty(wide_iteration(n, k));
            for (drive_name, drive) in drives {
                campaign.push(Scenario::new(
                    format!("n{n}/wide-k{k}/{drive_name}"),
                    universe,
                    spec.clone(),
                    Workload::WideFdConvergence {
                        k,
                        t: t_of(n).max(k),
                        policy: TimeoutPolicy::Increment,
                        drive,
                    },
                    budget,
                    cfg.seed,
                ));
                rows.push(WideRow {
                    n,
                    k,
                    drive: drive_name,
                    budget,
                    expect,
                });
            }
        }
    }

    let outcomes = cfg.run_campaign("e9-wide", &campaign);
    pass &= crate::config::violation_free(&outcomes);

    for (pair, outcome_pair) in rows.chunks(2).zip(outcomes.chunks(2)) {
        let row = &pair[0];
        let wide = wide_of(&outcome_pair[0].data);
        let soa_wide = wide_of(&outcome_pair[1].data);
        let identical = wide == soa_wide;
        pass &= identical;
        if !identical {
            notes.push(format!(
                "DRIVE DIVERGENCE at n={} k={} (paper detector): plain {:?} vs soa {:?}",
                row.n, row.k, wide, soa_wide
            ));
        }
        for (r, o) in pair.iter().zip(outcome_pair) {
            let w = wide_of(&o.data);
            let (stab_str, ws_str) = match &w.stabilization {
                Some(s) => (s.step.to_string(), format!("|{}|", s.members.len())),
                None => ("-".into(), "-".into()),
            };
            table.row([
                r.n.to_string(),
                r.k.to_string(),
                r.drive.to_string(),
                format!("{}k", r.budget / 1_000),
                format!("{:?}", w.status),
                stab_str,
                ws_str,
                w.publications.to_string(),
                w.late_flaps.to_string(),
                if r.expect { "converge" } else { "cap" }.to_string(),
            ]);
            if r.expect {
                let ok = w
                    .stabilization
                    .as_ref()
                    .is_some_and(|s| s.members.len() == r.k);
                pass &= ok;
                if !ok {
                    notes.push(format!(
                        "paper detector failed to stabilize to a k-set at n={} k={} ({})",
                        r.n, r.k, r.drive
                    ));
                }
            }
        }
    }
    notes.push(format!(
        "paper-detector grid: KAntiOmega on WideProcSet universes, k ∈ {ks:?}, sizes clamped \
         to n ≤ {WIDE_MAX_N}; same plain/SoA pairing discipline as the lean grid"
    ));

    (table, pass)
}

fn wide_of(data: &st_campaign::OutcomeData) -> &st_campaign::WideFdOutcome {
    data.as_wide_fd().expect("e9-wide is a wide-fd campaign")
}

fn lean_of(data: &st_campaign::OutcomeData) -> &LeanOutcome {
    data.as_lean().expect("E9 is a lean campaign")
}

fn record(table: &mut Table, row: &Row, l: &LeanOutcome, convergence: bool) -> bool {
    let (stab_str, leader_str) = match &l.stabilization {
        Some(s) => (s.step.to_string(), format!("p{}", s.leader)),
        None => ("-".into(), "-".into()),
    };
    table.row([
        row.n.to_string(),
        row.workload.to_string(),
        row.drive.to_string(),
        budget_str(row),
        format!("{:?}", l.status),
        stab_str,
        leader_str,
        l.publications.to_string(),
        l.late_flaps.to_string(),
        l.decided.to_string(),
        l.distinct_values.len().to_string(),
        if row.expect { "converge" } else { "cap" }.to_string(),
    ]);
    if !row.expect {
        return true; // informational row: violation-checking only
    }
    if convergence {
        l.stabilization.is_some()
    } else {
        // Agreement: one decided value, spread to a majority. Leader
        // stabilization is not expected here — machines halt on decision,
        // freezing their leader publications wherever the transient stood.
        l.distinct_values.len() == 1 && l.decided > row.n / 2
    }
}

fn budget_str(row: &Row) -> String {
    let (conv, agree, _) = budgets(row.n);
    let b = if row.workload == "convergence" {
        conv
    } else {
        agree
    };
    format!("{}k", b / 1_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e9_fast_converges_and_drives_agree() {
        let result = run(&LabConfig::fast());
        assert!(result.pass, "{}", result.render());
    }

    #[test]
    fn budget_tiers() {
        let (c64, a64, e64) = budgets(64);
        assert!(e64 && c64 < a64 && a64 <= BUDGET_CAP);
        let (_, a256, e256) = budgets(256);
        assert!(e256 && a256 <= BUDGET_CAP);
        let (c1024, a1024, e1024) = budgets(1024);
        assert!(!e1024);
        assert_eq!((c1024, a1024), (INFORMATIONAL_BUDGET, INFORMATIONAL_BUDGET));
    }
}
