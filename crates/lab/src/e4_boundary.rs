//! E4 — Theorem 26: the boundary between `S^k_{n,n}` and `S^{k+1}_{n,n}`.
//!
//! For `(k,k,n)`-agreement: on the solvable side (`S^k_{n,n}`, via a
//! conforming schedule) the stack decides; on the unsolvable side
//! (`S^{k+1}_{n,n}`) the **adaptive adversary** blocks every decision
//! forever while freezing at most `k` processes at a time, so every
//! `(k+1)`-set stays timely — certified post hoc with the analyzer. Safety
//! holds on both sides.
//!
//! Both sides are campaign scenarios: the solvable side is the agreement
//! workload over a conforming `SetTimely` spec, the unsolvable side is the
//! [`Workload::AdversarialAgreement`] workload (the adversary constructs
//! its schedule adaptively; the generator spec is a placeholder). Both run
//! the stack on the machine ABI (the `AgreementStack` default since the
//! agreement port).

use st_campaign::{Campaign, Scenario, Workload};
use st_core::{AgreementTask, ProcSet, ProcessId, Value};
use st_fd::TimeoutPolicy;
use st_sched::GeneratorSpec;

use crate::config::{ExperimentResult, LabConfig};
use crate::table::Table;

fn inputs(n: usize) -> Vec<Value> {
    (0..n as Value).map(|v| 500 + 3 * v).collect()
}

/// Runs E4.
pub fn run(cfg: &LabConfig) -> ExperimentResult {
    let mut table = Table::new([
        "task",
        "side",
        "schedule",
        "decided",
        "safe",
        "max_frozen",
        "certificate",
    ]);
    let mut pass = true;

    let grid: &[(usize, usize)] = if cfg.fast {
        &[(1, 3)]
    } else {
        &[(1, 3), (1, 4), (2, 4), (2, 5)]
    };

    let mut campaign = Campaign::new();
    for &(k, n) in grid {
        let universe = AgreementTask::new(k, k, n).unwrap().universe();
        let full = ProcSet::full(universe);

        // Solvable side: S^k_{n,n} — a size-k set timely wrt everyone.
        let p: ProcSet = (0..k).map(ProcessId::new).collect();
        campaign.push(Scenario::new(
            "solvable",
            universe,
            GeneratorSpec::set_timely(p, full, 2 * n, GeneratorSpec::seeded_random(0)),
            Workload::Agreement {
                t: k,
                k,
                inputs: inputs(n),
                policy: TimeoutPolicy::Increment,
                certify: None,
            },
            cfg.budget(4_000_000),
            cfg.seed,
        ));

        // Unsolvable side: S^{k+1}_{n,n} — adaptive adversary.
        let witness_p: ProcSet = (0..=k).map(ProcessId::new).collect(); // size k+1
        campaign.push(Scenario::new(
            "unsolvable",
            universe,
            GeneratorSpec::round_robin(), // ignored: the adversary schedules
            Workload::AdversarialAgreement {
                t: k,
                k,
                inputs: inputs(n),
                policy: TimeoutPolicy::Increment,
                precrashed: ProcSet::EMPTY,
                witness: Some((witness_p, full)),
            },
            cfg.budget(1_200_000),
            cfg.seed,
        ));
    }

    let outcomes = cfg.run_campaign("e4", &campaign);
    pass &= crate::config::violation_free(&outcomes);
    for (&(k, n), pair) in grid.iter().zip(outcomes.chunks(2)) {
        let task = AgreementTask::new(k, k, n).unwrap();

        let run = pair[0].data.as_agreement().expect("solvable side");
        table.row([
            task.to_string(),
            format!("S^{k}_{{{n},{n}}}"),
            "SetTimely".to_string(),
            run.decided_count().to_string(),
            run.safe.to_string(),
            "-".to_string(),
            "-".to_string(),
        ]);
        pass &= run.clean;

        let adv = pair[1].data.as_adversarial().expect("unsolvable side");
        let cert = adv.certificate.expect("requested");
        table.row([
            task.to_string(),
            format!("S^{}_{{{n},{n}}}", k + 1),
            "AdaptiveAdversary".to_string(),
            adv.decided.to_string(),
            adv.safe.to_string(),
            adv.max_frozen.to_string(),
            format!("{} wrt Π_{n} bound {}", cert.p, cert.bound),
        ]);
        pass &= adv.blocked && adv.safe && adv.max_frozen <= k && cert.bound <= 4 * n;
    }

    ExperimentResult {
        id: "E4",
        title: "Theorem 26 — (k,k,n) solvable in S^k_{n,n}, not in S^{k+1}_{n,n}",
        tables: vec![("boundary runs".into(), table)],
        notes: vec![
            "unsolvable side: ≤ k frozen at a time keeps every (k+1)-set timely (certified), \
             yet no process ever decides — the operational content of the BG reduction"
                .into(),
        ],
        pass,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e4_matches_paper() {
        let result = run(&LabConfig::fast());
        assert!(result.pass, "{}", result.render());
        // Golden: the campaign port reproduces the pre-port tables byte for
        // byte at the fixed seed (trailing newline from the capture).
        assert_eq!(
            format!("{}\n", result.render()),
            include_str!("../tests/golden/e4_fast.txt"),
            "E4 output drifted from the golden table"
        );
    }
}
