//! E4 — Theorem 26: the boundary between `S^k_{n,n}` and `S^{k+1}_{n,n}`.
//!
//! For `(k,k,n)`-agreement: on the solvable side (`S^k_{n,n}`, via a
//! conforming schedule) the stack decides; on the unsolvable side
//! (`S^{k+1}_{n,n}`) the **adaptive adversary** blocks every decision
//! forever while freezing at most `k` processes at a time, so every
//! `(k+1)`-set stays timely — certified post hoc with the analyzer. Safety
//! holds on both sides.
//!
//! Both sides run the stack on the machine ABI (the `AgreementStack`
//! default since the agreement port): the adaptive adversary single-steps
//! machine slots exactly as it did future slots, and the danger-window
//! freezing logic reads the same registers.

use st_agreement::{drive_adversarially, AgreementStack};
use st_core::{AgreementTask, ProcSet, ProcessId, Value};
use st_fd::TimeoutPolicy;
use st_sched::{SeededRandom, SetTimely};

use crate::config::{ExperimentResult, LabConfig};
use crate::table::Table;

fn inputs(n: usize) -> Vec<Value> {
    (0..n as Value).map(|v| 500 + 3 * v).collect()
}

/// Runs E4.
pub fn run(cfg: &LabConfig) -> ExperimentResult {
    let mut table = Table::new([
        "task",
        "side",
        "schedule",
        "decided",
        "safe",
        "max_frozen",
        "certificate",
    ]);
    let mut pass = true;

    let grid: &[(usize, usize)] = if cfg.fast {
        &[(1, 3)]
    } else {
        &[(1, 3), (1, 4), (2, 4), (2, 5)]
    };

    for &(k, n) in grid {
        let task = AgreementTask::new(k, k, n).unwrap();
        let universe = task.universe();

        // Solvable side: S^k_{n,n} — a size-k set timely wrt everyone.
        let p: ProcSet = (0..k).map(ProcessId::new).collect();
        let full = ProcSet::full(universe);
        let stack = AgreementStack::build(task, &inputs(n));
        let mut src = SetTimely::new(p, full, 2 * n, SeededRandom::new(universe, cfg.seed));
        let run = stack.run(&mut src, cfg.budget(4_000_000), ProcSet::EMPTY);
        let solvable_ok = run.is_clean_termination();
        table.row([
            task.to_string(),
            format!("S^{k}_{{{n},{n}}}"),
            "SetTimely".to_string(),
            run.outcome
                .decisions
                .iter()
                .filter(|d| d.is_some())
                .count()
                .to_string(),
            run.is_safe().to_string(),
            "-".to_string(),
            "-".to_string(),
        ]);
        pass &= solvable_ok;

        // Unsolvable side: S^{k+1}_{n,n} — adaptive adversary.
        let stack = AgreementStack::build_full(task, &inputs(n), TimeoutPolicy::Increment, true);
        let witness_p: ProcSet = (0..=k).map(ProcessId::new).collect(); // size k+1
        let adv = drive_adversarially(
            stack,
            cfg.budget(1_200_000),
            ProcSet::EMPTY,
            Some((witness_p, full)),
        );
        let cert = adv.certificate.expect("requested");
        let blocked = adv.run.outcome.decisions.iter().all(|d| d.is_none());
        table.row([
            task.to_string(),
            format!("S^{}_{{{n},{n}}}", k + 1),
            "AdaptiveAdversary".to_string(),
            (task.n()
                - adv
                    .run
                    .outcome
                    .decisions
                    .iter()
                    .filter(|d| d.is_none())
                    .count())
            .to_string(),
            adv.run.is_safe().to_string(),
            adv.max_frozen.to_string(),
            format!("{} wrt Π_{n} bound {}", cert.p, cert.bound),
        ]);
        pass &= blocked && adv.run.is_safe() && adv.max_frozen <= k && cert.bound <= 4 * n;
    }

    ExperimentResult {
        id: "E4",
        title: "Theorem 26 — (k,k,n) solvable in S^k_{n,n}, not in S^{k+1}_{n,n}",
        tables: vec![("boundary runs".into(), table)],
        notes: vec![
            "unsolvable side: ≤ k frozen at a time keeps every (k+1)-set timely (certified), \
             yet no process ever decides — the operational content of the BG reduction"
                .into(),
        ],
        pass,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e4_matches_paper() {
        let result = run(&LabConfig::fast());
        assert!(result.pass, "{}", result.render());
    }
}
