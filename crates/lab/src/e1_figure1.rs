//! E1 — Figure 1: set timeliness without process timeliness.
//!
//! Regenerates the paper's Figure 1 as a measured table: on growing
//! prefixes of `S = [(p1·q)^i (p2·q)^i]`, the empirical timeliness bound of
//! each singleton `{p1}`, `{p2}` with respect to `{q}` grows without bound,
//! while the bound of the *set* `{p1, p2}` stays at the constant 2.
//!
//! All three curves over all prefix checkpoints come from **one pass** over
//! the schedule via [`prefix_bounds`] (the naive form rescans the schedule
//! once per curve per checkpoint — `3 × log₂ 64` scans for the same table).

use st_core::timeliness::prefix_bounds;
use st_core::{ProcSet, ProcessId, StepSource};
use st_sched::Figure1;

use crate::config::{ExperimentResult, LabConfig};
use crate::table::Table;

/// Runs E1.
pub fn run(cfg: &LabConfig) -> ExperimentResult {
    let p1 = ProcessId::new(0);
    let p2 = ProcessId::new(1);
    let q = ProcessId::new(2);
    let s1 = ProcSet::singleton(p1);
    let s2 = ProcSet::singleton(p2);
    let pair = s1.union(s2);
    let qs = ProcSet::singleton(q);

    let max_len: usize = if cfg.fast { 40_000 } else { 400_000 };
    let mut gen = Figure1::new(p1, p2, q);
    let schedule = gen.take_schedule(max_len);

    // Doubling ladder from max_len/64, always ending exactly at max_len
    // (whatever the stride alignment), so the last row is the full prefix.
    let mut checkpoints = Vec::new();
    let mut len = (max_len / 64).max(1);
    while len < max_len {
        checkpoints.push(len);
        len *= 2;
    }
    checkpoints.push(max_len);
    let pairs = [(s1, qs), (s2, qs), (pair, qs)];
    let rows = prefix_bounds(&schedule, &pairs, &checkpoints);

    let mut table = Table::new([
        "prefix_steps",
        "bound({p1} wrt {q})",
        "bound({p2} wrt {q})",
        "bound({p1,p2} wrt {q})",
    ]);
    let mut pass = true;
    let mut last_singleton_bound = 0usize;
    let mut final_b1 = 0usize;
    for (&len, bounds) in checkpoints.iter().zip(&rows) {
        let (b1, b2, bp) = (bounds[0], bounds[1], bounds[2]);
        table.row([
            len.to_string(),
            b1.to_string(),
            b2.to_string(),
            bp.to_string(),
        ]);
        // Paper shape: the pair's bound is the constant 2 at every prefix…
        pass &= bp == 2;
        // …and the singleton bounds keep growing.
        pass &= b1 >= last_singleton_bound;
        last_singleton_bound = b1;
        final_b1 = b1;
    }
    pass &= final_b1 > 16; // unbounded growth evidence on the full prefix

    ExperimentResult {
        id: "E1",
        title: "Figure 1 — a set that is timely while none of its members is",
        tables: vec![("empirical bounds vs prefix length".into(), table)],
        notes: vec![format!(
            "final singleton bound {final_b1} (grows with prefix); pair bound 2 (constant)"
        )],
        pass,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_core::timeliness::empirical_bound;

    #[test]
    fn e1_matches_paper() {
        let result = run(&LabConfig::fast());
        assert!(result.pass, "{}", result.render());
        assert!(!result.tables[0].1.is_empty());
    }

    #[test]
    fn e1_single_pass_agrees_with_per_prefix_scans() {
        // The one-pass prefix_bounds table must equal the naive per-prefix
        // empirical_bound scans it replaced.
        let mut gen = Figure1::new(ProcessId::new(0), ProcessId::new(1), ProcessId::new(2));
        let schedule = gen.take_schedule(4_000);
        let s1 = ProcSet::from_indices([0]);
        let pairq = (ProcSet::from_indices([0, 1]), ProcSet::from_indices([2]));
        let pairs = [(s1, ProcSet::from_indices([2])), pairq];
        let checkpoints = [62, 125, 500, 1_000, 4_000];
        let rows = prefix_bounds(&schedule, &pairs, &checkpoints);
        for (&cp, row) in checkpoints.iter().zip(&rows) {
            let prefix = schedule.prefix(cp);
            assert_eq!(row[0], empirical_bound(&prefix, pairs[0].0, pairs[0].1));
            assert_eq!(row[1], empirical_bound(&prefix, pairs[1].0, pairs[1].1));
        }
    }
}
