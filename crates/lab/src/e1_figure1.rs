//! E1 — Figure 1: set timeliness without process timeliness.
//!
//! Regenerates the paper's Figure 1 as a measured table: on growing
//! prefixes of `S = [(p1·q)^i (p2·q)^i]`, the empirical timeliness bound of
//! each singleton `{p1}`, `{p2}` with respect to `{q}` grows without bound,
//! while the bound of the *set* `{p1, p2}` stays at the constant 2.

use st_core::timeliness::empirical_bound;
use st_core::{ProcSet, ProcessId, StepSource};
use st_sched::Figure1;

use crate::config::{ExperimentResult, LabConfig};
use crate::table::Table;

/// Runs E1.
pub fn run(cfg: &LabConfig) -> ExperimentResult {
    let p1 = ProcessId::new(0);
    let p2 = ProcessId::new(1);
    let q = ProcessId::new(2);
    let s1 = ProcSet::singleton(p1);
    let s2 = ProcSet::singleton(p2);
    let pair = s1.union(s2);
    let qs = ProcSet::singleton(q);

    let max_len: usize = if cfg.fast { 40_000 } else { 400_000 };
    let mut gen = Figure1::new(p1, p2, q);
    let schedule = gen.take_schedule(max_len);

    let mut table = Table::new([
        "prefix_steps",
        "bound({p1} wrt {q})",
        "bound({p2} wrt {q})",
        "bound({p1,p2} wrt {q})",
    ]);
    let mut pass = true;
    let mut last_singleton_bound = 0usize;
    let mut len = max_len / 64;
    while len <= max_len {
        let prefix = schedule.prefix(len);
        let b1 = empirical_bound(&prefix, s1, qs);
        let b2 = empirical_bound(&prefix, s2, qs);
        let bp = empirical_bound(&prefix, pair, qs);
        table.row([
            len.to_string(),
            b1.to_string(),
            b2.to_string(),
            bp.to_string(),
        ]);
        // Paper shape: the pair's bound is the constant 2 at every prefix…
        pass &= bp == 2;
        // …and the singleton bounds keep growing.
        pass &= b1 >= last_singleton_bound;
        last_singleton_bound = b1;
        len *= 2;
    }
    let final_b1 = empirical_bound(&schedule, s1, qs);
    pass &= final_b1 > 16; // unbounded growth evidence on the full prefix

    ExperimentResult {
        id: "E1",
        title: "Figure 1 — a set that is timely while none of its members is",
        tables: vec![("empirical bounds vs prefix length".into(), table)],
        notes: vec![format!(
            "final singleton bound {final_b1} (grows with prefix); pair bound 2 (constant)"
        )],
        pass,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_matches_paper() {
        let result = run(&LabConfig::fast());
        assert!(result.pass, "{}", result.render());
        assert!(!result.tables[0].1.is_empty());
    }
}
