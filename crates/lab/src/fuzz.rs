//! `stlab fuzz`: the lab front-end of the coverage-guided fuzzer in
//! [`st_campaign::fuzz`].
//!
//! The session fuzzes the scenario catalog's task shape (`n = 5`,
//! `Π = ({0,1}, {0,1,2})`, bound 6) starting from two *clean* conforming
//! seeds — the baseline set-timely spec under the agreement and FD
//! workloads — and lets mutation find trouble. The per-scenario step
//! budget is fixed (not `--fast`-scaled) so a fuzz session's bytes depend
//! only on `(--budget, --master-seed, corpus store)`: CI diffs the corpus
//! store across repeat runs and worker counts.
//!
//! With `--shrink`, the first finding is delta-debugged down to a minimal
//! still-violating scenario before reporting (and before
//! `--save-counterexample` persists it).

use st_campaign::{
    Counterexample, FuzzConfig, FuzzInput, FuzzReport, FuzzSession, OutcomeStore, Shrinker,
};

use crate::config::LabConfig;
use crate::scenarios;

/// Default total scenario budget of a session.
pub const DEFAULT_BUDGET: usize = 64;

/// Default master seed. Pinned so the default session rediscovers the
/// starved-fixture class of Termination violation within
/// [`DEFAULT_BUDGET`] — CI's fuzz smoke asserts this.
pub const DEFAULT_MASTER_SEED: u64 = 3;

/// Per-scenario step budget. Fixed — see the module docs.
const STEP_BUDGET: u64 = 8_000;

/// Scenarios per round (the unit of corpus feedback).
const BATCH: usize = 8;

/// `stlab fuzz` options.
#[derive(Clone, Debug)]
pub struct FuzzOptions {
    /// Total scenario budget.
    pub budget: usize,
    /// Master seed for batch derivation.
    pub master_seed: u64,
    /// Delta-debug the first finding before reporting.
    pub shrink: bool,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions {
            budget: DEFAULT_BUDGET,
            master_seed: DEFAULT_MASTER_SEED,
            shrink: false,
        }
    }
}

/// What `stlab fuzz` produced: the raw report, the rendered text, and the
/// (possibly shrunk) first finding as a saveable counterexample.
pub struct FuzzRun {
    /// The session report.
    pub report: FuzzReport,
    /// Rendered human-readable block.
    pub rendered: String,
    /// The first finding, shrunk when requested — `None` on a clean run.
    pub counterexample: Option<Counterexample>,
}

/// The session configuration `stlab fuzz` runs: catalog shape, clean
/// conforming seeds under both workloads.
pub fn fuzz_config(cfg: &LabConfig, opts: &FuzzOptions) -> FuzzConfig {
    FuzzConfig {
        key: "fuzz".into(),
        universe: scenarios::universe(),
        workloads: vec![scenarios::agreement_workload(), scenarios::fd_workload()],
        seeds: vec![
            FuzzInput {
                spec: scenarios::conforming(),
                workload: 0,
                seed: cfg.seed,
            },
            FuzzInput {
                spec: scenarios::conforming(),
                workload: 1,
                seed: cfg.seed,
            },
        ],
        master_seed: opts.master_seed,
        budget: opts.budget,
        batch: BATCH,
        step_budget: STEP_BUDGET,
        threads: cfg.threads,
        stop_on_finding: false,
    }
}

/// Runs a fuzz session. `resume` carries a previous session's corpus store
/// forward (outcomes are reused, the corpus is recomputed from them);
/// `record` receives the final store for persisting.
pub fn run_fuzz(
    cfg: &LabConfig,
    opts: &FuzzOptions,
    resume: Option<&OutcomeStore>,
    record: Option<&mut OutcomeStore>,
) -> FuzzRun {
    let fuzz_cfg = fuzz_config(cfg, opts);
    let report = FuzzSession::new(fuzz_cfg.clone()).run(resume, record);

    let mut out = String::from("== fuzz: coverage-guided invariant fuzzing ==\n");
    out.push_str(&format!(
        "  shape: n = {}, conforming set-timely seeds under agreement + fd workloads\n",
        fuzz_cfg.universe.n()
    ));
    out.push_str(&format!(
        "  budget {} scenarios, batch {BATCH}, master seed {}, step budget {STEP_BUDGET}\n",
        opts.budget, opts.master_seed
    ));
    out.push_str(&format!(
        "  executed {} scenarios in {} rounds; coverage {} features; corpus {} entries\n",
        report.executed,
        report.rounds,
        report.coverage,
        report.corpus.len()
    ));
    for f in &report.findings {
        for v in &f.outcome.violations {
            out.push_str(&format!(
                "  FINDING [{}] rank {}: {v}\n",
                f.scenario.label, f.rank
            ));
        }
    }

    let counterexample = report.findings.first().and_then(|f| {
        let (scenario, outcome) = if opts.shrink {
            let shrunk = Shrinker::new().shrink(&f.scenario, &f.outcome)?;
            out.push_str(&format!(
                "  shrunk counterexample: {} -> {} steps (kind {}, {} oracle runs, {} spec + {} schedule steps)\n",
                shrunk.original_len,
                shrunk.shrunk_len,
                shrunk.kind,
                shrunk.runs,
                shrunk.spec_steps,
                shrunk.schedule_steps
            ));
            (shrunk.scenario, shrunk.outcome)
        } else {
            (f.scenario.clone(), f.outcome.clone())
        };
        Counterexample::new(scenario, outcome)
    });

    out.push_str(&format!(
        "verdict: {}\n",
        if report.findings.is_empty() {
            "CLEAN (no invariant violated)".to_string()
        } else {
            format!("{} finding(s)", report.findings.len())
        }
    ));
    FuzzRun {
        report,
        rendered: out,
        counterexample,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The default session finds the starved-fixture class of violation
    /// from clean seeds, and `--shrink` collapses its counterexample.
    #[test]
    fn default_session_finds_and_shrinks() {
        let cfg = LabConfig::fast().with_threads(2);
        let opts = FuzzOptions {
            shrink: true,
            ..FuzzOptions::default()
        };
        let run = run_fuzz(&cfg, &opts, None, None);
        assert!(
            !run.report.findings.is_empty(),
            "the pinned default master seed must find a violation"
        );
        assert!(run.rendered.contains("FINDING ["));
        assert!(run.rendered.contains("shrunk counterexample: "));
        let ce = run
            .counterexample
            .expect("a finding yields a counterexample");
        assert!(!ce.outcome.violations.is_empty());
    }

    /// A fuzz session resumed from its own corpus store is byte-identical
    /// — the CLI-level version of the engine's resume guarantee.
    #[test]
    fn corpus_store_resume_is_byte_identical() {
        let cfg = LabConfig::fast().with_threads(2);
        let opts = FuzzOptions {
            budget: 24,
            ..FuzzOptions::default()
        };
        let mut full = OutcomeStore::new();
        run_fuzz(&cfg, &opts, None, Some(&mut full));
        let mut truncated = full.clone();
        truncated.retain(|i, _| i < 10);
        let mut resumed = OutcomeStore::new();
        run_fuzz(&cfg, &opts, Some(&truncated), Some(&mut resumed));
        assert_eq!(resumed.to_json_string(), full.to_json_string());
    }
}
