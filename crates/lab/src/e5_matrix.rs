//! E5 — Theorem 27: the full solvability matrix.
//!
//! For every system `S^i_{j,n}` (`1 ≤ i ≤ j ≤ n`) and every task
//! `(t,k,n)` (`1 ≤ k ≤ t ≤ n−1`), compares the paper's predicate
//! — *solvable iff `i ≤ k` and `j − i ≥ t + 1 − k`* — against observed
//! protocol behaviour:
//!
//! - **predicted solvable** → run the stack on a conforming `S^i_{j,n}`
//!   schedule; expect clean termination;
//! - **predicted unsolvable, `i > k`** → adaptive adversary with no
//!   pre-crashes (every `(k+1)`-set, hence every `i`-set, stays timely);
//! - **predicted unsolvable, `j − i < t+1−k`** → adaptive adversary with
//!   `j − i` fictitious crashes (membership witness at bound 1).
//!
//! Safety must hold in every cell.
//!
//! The matrix is a campaign (`st-campaign`): each cell is a [`Scenario`] —
//! solvable cells run [`Workload::Agreement`] with a [`CertifyTimely`]
//! pre-check (the conforming schedule is certified in `S^i_{j,n}` before
//! the cell is trusted), unsolvable cells run
//! [`Workload::AdversarialAgreement`] — executed in parallel with the
//! deterministic rank-ordered merge, and resumable through the outcome
//! store like every other campaign experiment.

use st_campaign::{Campaign, CertifyTimely, OutcomeData, Scenario, Workload};
use st_core::timeliness::sweep_matrix;
use st_core::{
    solvability, AgreementTask, ProcSet, ProcessId, Solvability, StepSource, SystemSpec,
    UnsolvableReason, Value,
};
use st_fd::TimeoutPolicy;
use st_sched::GeneratorSpec;

use crate::config::{ExperimentResult, LabConfig};
use crate::table::Table;

fn inputs(n: usize) -> Vec<Value> {
    (0..n as Value).map(|v| 9000 + 11 * v).collect()
}

/// One cell's observation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Observed {
    Decided,
    BlockedSafely,
    Mismatch,
}

/// The scenario of one predicted-solvable cell: conforming generator,
/// agreement workload, pre-run `S^i_{j,n}` certification.
fn solvable_scenario(cfg: &LabConfig, task: AgreementTask, sys: SystemSpec) -> Scenario {
    let universe = task.universe();
    let (i, j) = (sys.i(), sys.j());
    // Conforming schedule: P = first i processes timely wrt Q = first j.
    let p: ProcSet = (0..i).map(ProcessId::new).collect();
    let q: ProcSet = (0..j).map(ProcessId::new).collect();
    let cap = 2 * (j + 1);
    Scenario::new(
        format!("{task}/{sys}/solvable"),
        universe,
        GeneratorSpec::set_timely(p, q, cap, GeneratorSpec::seeded_random(0)),
        Workload::Agreement {
            t: task.t(),
            k: task.k(),
            inputs: inputs(task.n()),
            policy: TimeoutPolicy::Increment,
            // Certify membership in S^i_{j,n} *before* trusting the cell:
            // sweep a prefix of the same generator with the timeliness
            // engine.
            certify: Some(CertifyTimely {
                i,
                j,
                cap,
                prefix_len: cfg.budget(40_000),
            }),
        },
        cfg.budget(4_000_000),
        cfg.seed,
    )
}

/// The scenario of one predicted-unsolvable cell: adaptive adversary (with
/// fictitious crashes on the spread branch).
fn unsolvable_scenario(
    cfg: &LabConfig,
    task: AgreementTask,
    sys: SystemSpec,
    reason: UnsolvableReason,
) -> Scenario {
    let n = task.n();
    let (precrashed, witness) = match reason {
        UnsolvableReason::TimelySetTooLarge => {
            // Freezer alone: every (k+1)-set timely; weaken to a size-i
            // witness via Observation 3. Certify the (k+1)-set.
            let w: ProcSet = (0..=task.k()).map(ProcessId::new).collect();
            (ProcSet::EMPTY, (w, ProcSet::full(task.universe())))
        }
        UnsolvableReason::SpreadTooSmall => {
            let crash_count = sys.j() - sys.i();
            let crashed: ProcSet = ((n - crash_count)..n).map(ProcessId::new).collect();
            let p_i: ProcSet = (0..sys.i()).map(ProcessId::new).collect();
            (crashed, (p_i, p_i.union(crashed)))
        }
    };
    Scenario::new(
        format!("{task}/{sys}/adversarial"),
        task.universe(),
        // The adversary constructs its own schedule; the generator spec is
        // conventional (see `Workload::AdversarialAgreement`).
        GeneratorSpec::round_robin(),
        Workload::AdversarialAgreement {
            t: task.t(),
            k: task.k(),
            inputs: inputs(n),
            policy: TimeoutPolicy::Increment,
            precrashed,
            witness: Some(witness),
        },
        cfg.budget(1_000_000),
        cfg.seed,
    )
}

/// What a cell's outcome shows, against what the cell expected.
fn observe(outcome: &OutcomeData, n: usize) -> Observed {
    match outcome {
        OutcomeData::Agreement(run) => {
            if run.certified == Some(false) {
                // The conforming generator failed its own membership
                // certification: the cell proves nothing.
                Observed::Mismatch
            } else if run.clean {
                Observed::Decided
            } else {
                Observed::Mismatch
            }
        }
        OutcomeData::Adversarial(adv) => {
            let cert_ok = adv.certificate.map(|c| c.bound <= 4 * n).unwrap_or(false);
            if adv.blocked && adv.safe && cert_ok {
                Observed::BlockedSafely
            } else {
                Observed::Mismatch
            }
        }
        _ => Observed::Mismatch,
    }
}

/// Runs E5.
pub fn run(cfg: &LabConfig) -> ExperimentResult {
    let n = if cfg.fast { 4 } else { 5 };
    let mut table = Table::new(["task", "system", "theory", "observed", "agree"]);
    let mut pass = true;
    let mut agreements = 0usize;

    // One scenario per matrix cell, in row order.
    let mut campaign = Campaign::new();
    let mut rows: Vec<(AgreementTask, SystemSpec, Solvability)> = Vec::new();
    for t in 1..n {
        for k in 1..=t {
            let task = AgreementTask::new(t, k, n).unwrap();
            for i in 1..=n {
                for j in i..=n {
                    let sys = SystemSpec::new(i, j, n).unwrap();
                    let verdict = solvability(&task, &sys).unwrap();
                    campaign.push(match verdict {
                        Solvability::Solvable { .. } => solvable_scenario(cfg, task, sys),
                        Solvability::Unsolvable(reason) => {
                            unsolvable_scenario(cfg, task, sys, reason)
                        }
                    });
                    rows.push((task, sys, verdict));
                }
            }
        }
    }
    let cells = rows.len();
    let outcomes = cfg.run_campaign("e5", &campaign);
    pass &= crate::config::violation_free(&outcomes);

    for ((task, sys, verdict), outcome) in rows.iter().zip(&outcomes) {
        let observed = observe(&outcome.data, task.n());
        let agree = matches!(
            (verdict, observed),
            (Solvability::Solvable { .. }, Observed::Decided)
                | (Solvability::Unsolvable(_), Observed::BlockedSafely)
        );
        agreements += agree as usize;
        pass &= agree;
        table.row([
            task.to_string(),
            sys.to_string(),
            verdict.to_string(),
            format!("{observed:?}"),
            agree.to_string(),
        ]);
    }

    // Companion view: the full (i, j) timeliness sweep of one random
    // schedule, produced by the shared-decomposition matrix engine. Every
    // cell of the solvability matrix above asks "is there a timely pair of
    // this shape?"; this table answers it for all shapes at once.
    let sweep_len = cfg.budget(80_000) as usize;
    let schedule = GeneratorSpec::seeded_random(0)
        .build(st_core::Universe::new(n).unwrap(), cfg.seed ^ 0x5EED)
        .take_schedule(sweep_len);
    let swept = sweep_matrix(
        &schedule,
        st_core::Universe::new(n).unwrap(),
        2 * n,
        // The shared resolver (also used inside sweep_matrix and by the
        // campaign engine): honors `--threads`, `usize::MAX` = hardware.
        st_core::parallel::resolve_workers(cfg.threads),
    );
    let mut sweep_table = Table::new(["i \\ j", "counts per j (1..=n)"]);
    for i in 1..=n {
        let counts: Vec<String> = (1..=n)
            .map(|j| swept.cell(i, j).timely_pairs.to_string())
            .collect();
        sweep_table.row([i.to_string(), counts.join(" ")]);
    }

    ExperimentResult {
        id: "E5",
        title: "Theorem 27 — solvability matrix: (t,k,n) vs S^i_{j,n}",
        tables: vec![
            (format!("matrix for n = {n} ({cells} cells)"), table),
            (
                format!(
                    "timely-pair counts per (i, j) on a seeded-random schedule \
                     (L = {sweep_len}, cap = {})",
                    2 * n
                ),
                sweep_table,
            ),
        ],
        notes: vec![format!(
            "{agreements}/{cells} cells agree with the predicate"
        )],
        pass,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e5_matches_paper() {
        let result = run(&LabConfig::fast());
        assert!(result.pass, "{}", result.render());
        // Golden: the campaign port reproduces the pre-port tables byte for
        // byte at the fixed seed (trailing newline from the capture).
        assert_eq!(
            format!("{}\n", result.render()),
            include_str!("../tests/golden/e5_fast.txt"),
            "E5 output drifted from the golden table"
        );
    }

    /// A small 2-task slice through the campaign cell constructors (quick
    /// to localize a failing shape when the full golden above trips).
    #[test]
    fn e5_slice_matches_paper() {
        let cfg = LabConfig::fast();
        let n = 3;
        for (t, k) in [(1usize, 1usize), (2, 1)] {
            let task = AgreementTask::new(t, k, n).unwrap();
            for i in 1..=n {
                for j in i..=n {
                    let sys = SystemSpec::new(i, j, n).unwrap();
                    let verdict = solvability(&task, &sys).unwrap();
                    let scenario = match verdict {
                        Solvability::Solvable { .. } => solvable_scenario(&cfg, task, sys),
                        Solvability::Unsolvable(reason) => {
                            unsolvable_scenario(&cfg, task, sys, reason)
                        }
                    };
                    let observed = observe(&scenario.run().data, n);
                    let agree = matches!(
                        (&verdict, observed),
                        (Solvability::Solvable { .. }, Observed::Decided)
                            | (Solvability::Unsolvable(_), Observed::BlockedSafely)
                    );
                    assert!(agree, "cell {task} vs {sys}: {verdict} but {observed:?}");
                }
            }
        }
    }
}
