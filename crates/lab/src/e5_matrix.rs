//! E5 — Theorem 27: the full solvability matrix.
//!
//! For every system `S^i_{j,n}` (`1 ≤ i ≤ j ≤ n`) and every task
//! `(t,k,n)` (`1 ≤ k ≤ t ≤ n−1`), compares the paper's predicate
//! — *solvable iff `i ≤ k` and `j − i ≥ t + 1 − k`* — against observed
//! protocol behaviour:
//!
//! - **predicted solvable** → run the stack on a conforming `S^i_{j,n}`
//!   schedule; expect clean termination;
//! - **predicted unsolvable, `i > k`** → adaptive adversary with no
//!   pre-crashes (every `(k+1)`-set, hence every `i`-set, stays timely);
//! - **predicted unsolvable, `j − i < t+1−k`** → adaptive adversary with
//!   `j − i` fictitious crashes (membership witness at bound 1).
//!
//! Safety must hold in every cell.

use st_agreement::{drive_adversarially, AgreementStack};
use st_core::timeliness::{sweep_matrix, TimelinessAnalyzer};
use st_core::{
    solvability, AgreementTask, ProcSet, ProcessId, Solvability, StepSource, SystemSpec,
    UnsolvableReason, Value,
};
use st_fd::TimeoutPolicy;
use st_sched::{SeededRandom, SetTimely};

use crate::config::{ExperimentResult, LabConfig};
use crate::table::Table;

fn inputs(n: usize) -> Vec<Value> {
    (0..n as Value).map(|v| 9000 + 11 * v).collect()
}

/// One cell's observation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Observed {
    Decided,
    BlockedSafely,
    Mismatch,
}

/// Runs one predicted-solvable cell: conforming schedule, expect clean
/// termination.
fn run_solvable_cell(cfg: &LabConfig, task: AgreementTask, sys: SystemSpec) -> Observed {
    let universe = task.universe();
    let (i, j) = (sys.i(), sys.j());
    // Conforming schedule: P = first i processes timely wrt Q = first j.
    let p: ProcSet = (0..i).map(ProcessId::new).collect();
    let q: ProcSet = (0..j).map(ProcessId::new).collect();
    // Certify membership in S^i_{j,n} *before* trusting the cell: sweep a
    // prefix of the same generator with the timeliness engine.
    let cap = 2 * (j + 1);
    let prefix = SetTimely::new(p, q, cap, SeededRandom::new(universe, cfg.seed))
        .take_schedule(cfg.budget(40_000) as usize);
    let certified = TimelinessAnalyzer::new(universe)
        .find_timely_pair(&prefix, i, j, cap)
        .is_some();
    if !certified {
        return Observed::Mismatch;
    }
    let stack = AgreementStack::build(task, &inputs(task.n()));
    let mut src = SetTimely::new(p, q, cap, SeededRandom::new(universe, cfg.seed));
    let run = stack.run(&mut src, cfg.budget(4_000_000), ProcSet::EMPTY);
    if run.is_clean_termination() {
        Observed::Decided
    } else {
        Observed::Mismatch
    }
}

/// Runs one predicted-unsolvable cell: adaptive adversary (with fictitious
/// crashes on the spread branch), expect safe blocking.
fn run_unsolvable_cell(
    cfg: &LabConfig,
    task: AgreementTask,
    sys: SystemSpec,
    reason: UnsolvableReason,
) -> Observed {
    let n = task.n();
    let stack = AgreementStack::build_full(task, &inputs(n), TimeoutPolicy::Increment, true);
    let (precrashed, witness) = match reason {
        UnsolvableReason::TimelySetTooLarge => {
            // Freezer alone: every (k+1)-set timely; weaken to a size-i
            // witness via Observation 3. Certify the (k+1)-set.
            let w: ProcSet = (0..=task.k()).map(ProcessId::new).collect();
            (ProcSet::EMPTY, (w, ProcSet::full(task.universe())))
        }
        UnsolvableReason::SpreadTooSmall => {
            let crash_count = sys.j() - sys.i();
            let crashed: ProcSet = ((n - crash_count)..n).map(ProcessId::new).collect();
            let p_i: ProcSet = (0..sys.i()).map(ProcessId::new).collect();
            (crashed, (p_i, p_i.union(crashed)))
        }
    };
    let adv = drive_adversarially(stack, cfg.budget(1_000_000), precrashed, Some(witness));
    let blocked = adv.run.outcome.decisions.iter().all(|d| d.is_none());
    let cert_ok = adv.certificate.map(|c| c.bound <= 4 * n).unwrap_or(false);
    if blocked && adv.run.is_safe() && cert_ok {
        Observed::BlockedSafely
    } else {
        Observed::Mismatch
    }
}

/// Runs E5.
pub fn run(cfg: &LabConfig) -> ExperimentResult {
    let n = if cfg.fast { 4 } else { 5 };
    let mut table = Table::new(["task", "system", "theory", "observed", "agree"]);
    let mut pass = true;
    let mut cells = 0usize;
    let mut agreements = 0usize;

    for t in 1..n {
        for k in 1..=t {
            let task = AgreementTask::new(t, k, n).unwrap();
            for i in 1..=n {
                for j in i..=n {
                    let sys = SystemSpec::new(i, j, n).unwrap();
                    let verdict = solvability(&task, &sys).unwrap();
                    let observed = match verdict {
                        Solvability::Solvable { .. } => run_solvable_cell(cfg, task, sys),
                        Solvability::Unsolvable(reason) => {
                            run_unsolvable_cell(cfg, task, sys, reason)
                        }
                    };
                    let agree = matches!(
                        (&verdict, observed),
                        (Solvability::Solvable { .. }, Observed::Decided)
                            | (Solvability::Unsolvable(_), Observed::BlockedSafely)
                    );
                    cells += 1;
                    agreements += agree as usize;
                    pass &= agree;
                    table.row([
                        task.to_string(),
                        sys.to_string(),
                        verdict.to_string(),
                        format!("{observed:?}"),
                        agree.to_string(),
                    ]);
                }
            }
        }
    }

    // Companion view: the full (i, j) timeliness sweep of one random
    // schedule, produced by the shared-decomposition matrix engine. Every
    // cell of the solvability matrix above asks "is there a timely pair of
    // this shape?"; this table answers it for all shapes at once.
    let sweep_len = cfg.budget(80_000) as usize;
    let schedule = SeededRandom::new(st_core::Universe::new(n).unwrap(), cfg.seed ^ 0x5EED)
        .take_schedule(sweep_len);
    let swept = sweep_matrix(
        &schedule,
        st_core::Universe::new(n).unwrap(),
        2 * n,
        // The shared resolver (also used inside sweep_matrix and by the
        // campaign engine): honors `--threads`, `usize::MAX` = hardware.
        st_core::parallel::resolve_workers(cfg.threads),
    );
    let mut sweep_table = Table::new(["i \\ j", "counts per j (1..=n)"]);
    for i in 1..=n {
        let counts: Vec<String> = (1..=n)
            .map(|j| swept.cell(i, j).timely_pairs.to_string())
            .collect();
        sweep_table.row([i.to_string(), counts.join(" ")]);
    }

    ExperimentResult {
        id: "E5",
        title: "Theorem 27 — solvability matrix: (t,k,n) vs S^i_{j,n}",
        tables: vec![
            (format!("matrix for n = {n} ({cells} cells)"), table),
            (
                format!(
                    "timely-pair counts per (i, j) on a seeded-random schedule \
                     (L = {sweep_len}, cap = {})",
                    2 * n
                ),
                sweep_table,
            ),
        ],
        notes: vec![format!(
            "{agreements}/{cells} cells agree with the predicate"
        )],
        pass,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The fast matrix is still 60 full protocol runs; exercised in release
    /// benches and the `stlab` binary. Here, run a 2-task slice.
    #[test]
    fn e5_slice_matches_paper() {
        let cfg = LabConfig::fast();
        let n = 3;
        for (t, k) in [(1usize, 1usize), (2, 1)] {
            let task = AgreementTask::new(t, k, n).unwrap();
            for i in 1..=n {
                for j in i..=n {
                    let sys = SystemSpec::new(i, j, n).unwrap();
                    let verdict = solvability(&task, &sys).unwrap();
                    let observed = match verdict {
                        Solvability::Solvable { .. } => run_solvable_cell(&cfg, task, sys),
                        Solvability::Unsolvable(reason) => {
                            run_unsolvable_cell(&cfg, task, sys, reason)
                        }
                    };
                    let agree = matches!(
                        (&verdict, observed),
                        (Solvability::Solvable { .. }, Observed::Decided)
                            | (Solvability::Unsolvable(_), Observed::BlockedSafely)
                    );
                    assert!(agree, "cell {task} vs {sys}: {verdict} but {observed:?}");
                }
            }
        }
    }
}
