//! Experiment harness: regenerates every figure and theorem of the paper as
//! a measured table.
//!
//! | Id | Paper artifact | Module |
//! |----|----------------|--------|
//! | E1 | Figure 1 (set-timely, not process-timely)        | [`e1_figure1`] |
//! | E2 | Figure 2 / Theorem 23 (k-anti-Ω convergence)     | [`e2_fd`] |
//! | E3 | Theorem 24 / Corollary 25 (agreement solvable)   | [`e3_agreement`] |
//! | E4 | Theorem 26 (the i = k / i = k+1 boundary)        | [`e4_boundary`] |
//! | E5 | Theorem 27 (the full solvability matrix)         | [`e5_matrix`] |
//! | E6 | Theorem 26 proof (the BG reduction, executed)    | [`e6_bg`] |
//! | E7 | Ablations (timeout policy, synchrony quality)    | [`e7_ablation`] |
//! | E8 | Motivation: set vs process timeliness            | [`e8_motivation`] |
//! | E9 | n-scaling: the lean stack at n = 64…1024         | [`e9_scaling`] |
//!
//! Run them all with the `stlab` binary: `cargo run -p st-lab --release --bin stlab -- all`.
//!
//! Besides the experiments, the lab ships a named **fault-injection
//! scenario catalog** ([`scenarios`], documented in `SCENARIOS.md`):
//! `stlab --scenario <name>` runs a cataloged fault shape (flapping
//! timeliness, gray failure, burst clogging, crash-recovery, the adaptive
//! adversary) as a campaign with the always-on invariant checker, and
//! `stlab --list-scenarios` prints the catalog. Any recorded
//! `InvariantViolation` makes the run exit non-zero and prints a
//! replayable counterexample schedule.
//!
//! `stlab fuzz` ([`fuzz`]) goes further: a deterministic coverage-guided
//! fuzz session over generator-spec space (clean conforming seeds, the
//! spec mutator, the always-on checker as oracle), with `--shrink`
//! delta-debugging any finding to a minimal still-violating scenario and
//! `--save-counterexample` / `--replay` persisting and re-executing it.
//!
//! # The campaign layer
//!
//! E2–E8 no longer hand-roll their grid loops: each builds a
//! `st_campaign::Campaign` of declarative scenarios (generator spec ×
//! workload × crash plan × seed) and renders its tables from the outcome
//! list — E5's solvable/adversarial matrix cells and E6's BG reduction
//! rows included. Campaigns execute on a work-stealing worker pool
//! (`LabConfig::threads`, the `stlab --threads N` flag) and merge outcomes
//! in rank order, so **every table is identical for every thread count** —
//! enforced by golden tests against `tests/golden/*.txt`, captured from the
//! pre-campaign sequential harness at the fixed seed. E1 keeps its bespoke
//! prefix-curve driver; E5's companion sweep parallelizes inside
//! `st_core::timeliness::sweep_matrix`.
//!
//! # Persistence and resume
//!
//! Every campaign experiment runs through
//! [`LabConfig::run_campaign`], which consults the optional
//! [`LabSession`]: `stlab --outcomes store.json` records every scenario
//! outcome (keyed by experiment id, rank, and serialized spec) into a
//! versioned `st_campaign::OutcomeStore`, and `stlab --resume store.json`
//! skips every stored scenario whose spec is unchanged. Interrupt a sweep,
//! resume it, and the rendered tables — and the rewritten store — are
//! byte-identical to an uninterrupted run at any thread count (CI's
//! `campaign-resume-smoke` enforces this end to end).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod e1_figure1;
pub mod e2_fd;
pub mod e3_agreement;
pub mod e4_boundary;
pub mod e5_matrix;
pub mod e6_bg;
pub mod e7_ablation;
pub mod e8_motivation;
pub mod e9_scaling;
pub mod fuzz;
pub mod scenarios;
pub mod table;

pub use config::{violation_free, ExperimentResult, LabConfig, LabSession};
pub use table::Table;

/// Runs one experiment by id (`"e1"`…`"e7"`).
pub fn run_experiment(id: &str, cfg: &LabConfig) -> Option<ExperimentResult> {
    match id {
        "e1" => Some(e1_figure1::run(cfg)),
        "e2" => Some(e2_fd::run(cfg)),
        "e3" => Some(e3_agreement::run(cfg)),
        "e4" => Some(e4_boundary::run(cfg)),
        "e5" => Some(e5_matrix::run(cfg)),
        "e6" => Some(e6_bg::run(cfg)),
        "e7" => Some(e7_ablation::run(cfg)),
        "e8" => Some(e8_motivation::run(cfg)),
        "e9" => Some(e9_scaling::run(cfg)),
        _ => None,
    }
}

/// All experiment ids in order.
pub const ALL_EXPERIMENTS: [&str; 9] = ["e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9"];
