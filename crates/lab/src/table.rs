//! Aligned-text tables for experiment output.

use std::fmt;

/// A simple column-aligned table (left-aligned cells, space padding).
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Access to the raw rows (for assertions in tests).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders as tab-separated values (machine-friendly).
    pub fn to_tsv(&self) -> String {
        let mut out = self.headers.join("\t");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join("\t"));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:<width$}", width = widths[i])?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["name", "value"]);
        t.row(["alpha", "1"]).row(["b", "12345"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "name   value");
        assert!(lines[1].starts_with("---"));
        assert_eq!(lines[2], "alpha  1    ");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn tsv_output() {
        let mut t = Table::new(["a", "b"]);
        t.row(["1", "2"]);
        assert_eq!(t.to_tsv(), "a\tb\n1\t2\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only one"]);
    }
}
