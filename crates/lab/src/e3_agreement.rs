//! E3 — Theorem 24 / Corollary 25: `(t,k,n)`-agreement solvable in
//! `S^k_{t+1,n}`.
//!
//! Runs the full stack (Figure 2 k-anti-Ω + k-parallel Paxos, or the
//! trivial algorithm when `t < k`) on conforming schedules, fault-free and
//! with `t` crashes, and measures: steps until every correct process
//! decided, number of distinct decisions, and the checker verdict.
//!
//! Since the agreement stack's machine-ABI port, the FD + k-parallel-Paxos
//! runs execute on the simulator's non-async fast path
//! ([`st_agreement::StackAbi::Machine`], the `AgreementStack` default) —
//! observationally identical to the async transcription (the
//! `st-agreement` differential suite) at ≥2× the step throughput
//! (`BENCH_timeliness.json`, `agreement_step_throughput`).

use st_agreement::AgreementStack;
use st_core::{AgreementTask, ProcSet, ProcessId, Value};
use st_sched::{CrashAfter, CrashPlan, SeededRandom, SetTimely};

use crate::config::{ExperimentResult, LabConfig};
use crate::table::Table;

fn inputs(n: usize) -> Vec<Value> {
    (0..n as Value).map(|v| 1000 + 7 * v).collect()
}

/// Runs E3.
pub fn run(cfg: &LabConfig) -> ExperimentResult {
    let mut table = Table::new([
        "task",
        "protocol",
        "crashes",
        "status",
        "decided@step",
        "distinct",
        "violations",
    ]);
    let mut pass = true;
    let budget = cfg.budget(4_000_000);

    let grid: &[(usize, usize, usize)] = if cfg.fast {
        &[(3, 1, 1), (4, 2, 2), (4, 3, 2)]
    } else {
        &[
            (3, 1, 1),
            (3, 1, 2),
            (4, 1, 2),
            (4, 2, 2),
            (4, 2, 3),
            (5, 1, 3),
            (5, 2, 3),
            (5, 3, 3),
            (5, 2, 4),
            (4, 3, 2), // trivial regime t < k
            (5, 4, 2), // trivial regime
        ]
    };

    for &(n, k, t) in grid {
        let task = AgreementTask::new(t, k, n).unwrap();
        let universe = task.universe();
        let p: ProcSet = (0..k.min(t)).map(ProcessId::new).collect();
        let p = if p.is_empty() {
            ProcSet::from_indices([0])
        } else {
            p
        };
        let q: ProcSet = (0..=t).map(ProcessId::new).collect();

        // Fault-free conforming run.
        let stack = AgreementStack::build(task, &inputs(n));
        let kind = format!("{:?}", stack.kind());
        let mut src = SetTimely::new(p, q, 2 * (t + 1), SeededRandom::new(universe, cfg.seed));
        let run = stack.run(&mut src, budget, ProcSet::EMPTY);
        pass &= emit(&mut table, &task, &kind, 0, &run);

        // With crashes (keep P and the trivial publishers' quorum alive).
        let crash_count = t.min(n.saturating_sub(k.max(1)));
        if crash_count > 0 {
            let crashed: ProcSet = ((n - crash_count)..n).map(ProcessId::new).collect();
            if p.is_disjoint(crashed) {
                let task2 = AgreementTask::new(t, k, n).unwrap();
                let stack = AgreementStack::build(task2, &inputs(n));
                let plan = CrashPlan::all_at(crashed, 2_000);
                let filler =
                    CrashAfter::new(SeededRandom::new(universe, cfg.seed + 9), plan.clone());
                let mut src = SetTimely::new(p, q, 2 * (t + 1), filler).with_crashes(plan);
                let run = stack.run(&mut src, budget, crashed);
                pass &= emit(&mut table, &task, &kind, crashed.len(), &run);
            }
        }
    }

    ExperimentResult {
        id: "E3",
        title: "Theorem 24 / Corollary 25 — (t,k,n)-agreement solvable in S^k_{t+1,n}",
        tables: vec![("end-to-end agreement grid".into(), table)],
        notes: vec!["every conforming run terminates with ≤ k distinct proposed values".into()],
        pass,
    }
}

fn emit(
    table: &mut Table,
    task: &AgreementTask,
    protocol: &str,
    crashes: usize,
    run: &st_agreement::StackRun,
) -> bool {
    let distinct: std::collections::BTreeSet<Value> =
        run.outcome.decisions.iter().flatten().copied().collect();
    let decided_at = run
        .report
        .all_decided_step(run.outcome.correct)
        .map_or("-".to_string(), |s| s.to_string());
    table.row([
        task.to_string(),
        protocol.to_string(),
        crashes.to_string(),
        format!("{:?}", run.status),
        decided_at,
        distinct.len().to_string(),
        if run.violations.is_empty() {
            "none".to_string()
        } else {
            format!("{:?}", run.violations)
        },
    ]);
    run.is_clean_termination() && distinct.len() <= task.k()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e3_matches_paper() {
        let result = run(&LabConfig::fast());
        assert!(result.pass, "{}", result.render());
    }
}
