//! E3 — Theorem 24 / Corollary 25: `(t,k,n)`-agreement solvable in
//! `S^k_{t+1,n}`.
//!
//! Runs the full stack (Figure 2 k-anti-Ω + k-parallel Paxos, or the
//! trivial algorithm when `t < k`) on conforming schedules, fault-free and
//! with `t` crashes, and measures: steps until every correct process
//! decided, number of distinct decisions, and the checker verdict.
//!
//! The grid is a campaign (`st-campaign`): each row is a [`Scenario`] with
//! a declarative conforming (optionally crash-decorated) generator spec and
//! the agreement workload, executed in parallel with a deterministic merge.
//! The stack runs on the simulator's non-async fast path
//! ([`st_agreement::StackAbi::Machine`], the `AgreementStack` default) —
//! observationally identical to the async transcription (the
//! `st-agreement` differential suite) at ≥2× the step throughput
//! (`BENCH_timeliness.json`, `agreement_step_throughput`).

use st_campaign::{AgreementScenarioOutcome, Campaign, Scenario, Workload};
use st_core::{AgreementTask, ProcSet, ProcessId, Value};
use st_fd::TimeoutPolicy;
use st_sched::{CrashPlan, GeneratorSpec};

use crate::config::{ExperimentResult, LabConfig};
use crate::table::Table;

fn inputs(n: usize) -> Vec<Value> {
    (0..n as Value).map(|v| 1000 + 7 * v).collect()
}

/// Runs E3.
pub fn run(cfg: &LabConfig) -> ExperimentResult {
    let mut table = Table::new([
        "task",
        "protocol",
        "crashes",
        "status",
        "decided@step",
        "distinct",
        "violations",
    ]);
    let mut pass = true;
    let budget = cfg.budget(4_000_000);

    let grid: &[(usize, usize, usize)] = if cfg.fast {
        &[(3, 1, 1), (4, 2, 2), (4, 3, 2)]
    } else {
        &[
            (3, 1, 1),
            (3, 1, 2),
            (4, 1, 2),
            (4, 2, 2),
            (4, 2, 3),
            (5, 1, 3),
            (5, 2, 3),
            (5, 3, 3),
            (5, 2, 4),
            (4, 3, 2), // trivial regime t < k
            (5, 4, 2), // trivial regime
        ]
    };

    let mut campaign = Campaign::new();
    let mut rows: Vec<(AgreementTask, usize)> = Vec::new();
    for &(n, k, t) in grid {
        let task = AgreementTask::new(t, k, n).unwrap();
        let universe = task.universe();
        let p: ProcSet = (0..k.min(t)).map(ProcessId::new).collect();
        let p = if p.is_empty() {
            ProcSet::from_indices([0])
        } else {
            p
        };
        let q: ProcSet = (0..=t).map(ProcessId::new).collect();
        let workload = Workload::Agreement {
            t,
            k,
            inputs: inputs(n),
            policy: TimeoutPolicy::Increment,
            certify: None,
        };

        // Fault-free conforming run.
        campaign.push(Scenario::new(
            "conforming",
            universe,
            GeneratorSpec::set_timely(p, q, 2 * (t + 1), GeneratorSpec::seeded_random(0)),
            workload.clone(),
            budget,
            cfg.seed,
        ));
        rows.push((task, 0));

        // With crashes (keep P and the trivial publishers' quorum alive).
        let crash_count = t.min(n.saturating_sub(k.max(1)));
        if crash_count > 0 {
            let crashed: ProcSet = ((n - crash_count)..n).map(ProcessId::new).collect();
            if p.is_disjoint(crashed) {
                let plan = CrashPlan::all_at(crashed, 2_000);
                let spec =
                    GeneratorSpec::set_timely(p, q, 2 * (t + 1), GeneratorSpec::seeded_random(9))
                        .crashed(plan);
                campaign.push(Scenario::new(
                    "conforming+crash",
                    universe,
                    spec,
                    workload,
                    budget,
                    cfg.seed,
                ));
                rows.push((task, crashed.len()));
            }
        }
    }

    let outcomes = cfg.run_campaign("e3", &campaign);
    pass &= crate::config::violation_free(&outcomes);
    for ((task, crashes), outcome) in rows.iter().zip(&outcomes) {
        let run = outcome.data.as_agreement().expect("agreement campaign");
        pass &= emit(&mut table, task, *crashes, run);
    }

    ExperimentResult {
        id: "E3",
        title: "Theorem 24 / Corollary 25 — (t,k,n)-agreement solvable in S^k_{t+1,n}",
        tables: vec![("end-to-end agreement grid".into(), table)],
        notes: vec!["every conforming run terminates with ≤ k distinct proposed values".into()],
        pass,
    }
}

fn emit(
    table: &mut Table,
    task: &AgreementTask,
    crashes: usize,
    run: &AgreementScenarioOutcome,
) -> bool {
    table.row([
        task.to_string(),
        format!("{:?}", run.kind),
        crashes.to_string(),
        format!("{:?}", run.status),
        run.decided_at.map_or("-".to_string(), |s| s.to_string()),
        run.distinct_decisions().to_string(),
        if run.violations.is_empty() {
            "none".to_string()
        } else {
            format!("{:?}", run.violations)
        },
    ]);
    run.clean && run.distinct_decisions() <= task.k()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e3_matches_paper() {
        let result = run(&LabConfig::fast());
        assert!(result.pass, "{}", result.render());
        // Golden: the campaign port reproduces the pre-port tables byte for
        // byte at the fixed seed (trailing newline from the capture).
        assert_eq!(
            format!("{}\n", result.render()),
            include_str!("../tests/golden/e3_fast.txt"),
            "E3 output drifted from the golden table"
        );
    }
}
