//! `stlab` — runs the paper's experiments and prints their tables.
//!
//! Usage:
//! ```text
//! stlab [--fast] [--tsv] [--threads N] [e1 e2 … | all]
//! ```
//!
//! `--fast` shrinks budgets and grids (smoke runs); `--tsv` additionally
//! emits each table as tab-separated values for downstream plotting;
//! `--threads N` sets the campaign worker count (default: one per hardware
//! thread — results are identical for every value, see `st-campaign`).

use st_lab::{run_experiment, LabConfig, ALL_EXPERIMENTS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let tsv = args.iter().any(|a| a == "--tsv");
    let mut threads = usize::MAX;
    let mut skip_next = false;
    let mut ids: Vec<String> = Vec::new();
    for (i, a) in args.iter().enumerate() {
        if skip_next {
            skip_next = false;
            continue;
        }
        match a.as_str() {
            "--fast" | "--tsv" => {}
            "--threads" => {
                let value = args.get(i + 1).unwrap_or_else(|| {
                    eprintln!("--threads needs a value");
                    std::process::exit(2);
                });
                threads = value.parse().unwrap_or_else(|_| {
                    eprintln!("--threads expects a positive integer, got {value:?}");
                    std::process::exit(2);
                });
                skip_next = true;
            }
            other => ids.push(other.to_lowercase()),
        }
    }
    let cfg = if fast {
        LabConfig::fast()
    } else {
        LabConfig::full()
    }
    .with_threads(threads);
    if ids.is_empty() || ids.iter().any(|a| a == "all") {
        ids = ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }

    let mut failures = 0;
    for id in &ids {
        match run_experiment(id, &cfg) {
            Some(result) => {
                println!("{}", result.render());
                if tsv {
                    for (name, table) in &result.tables {
                        println!("#tsv {} — {name}", result.id);
                        print!("{}", table.to_tsv());
                    }
                }
                if !result.pass {
                    failures += 1;
                }
            }
            None => {
                eprintln!("unknown experiment: {id} (known: e1..e8, all)");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!("{failures} experiment(s) failed");
        std::process::exit(1);
    }
}
