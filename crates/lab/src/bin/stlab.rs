//! `stlab` — runs the paper's experiments and prints their tables.
//!
//! Usage:
//! ```text
//! stlab [--fast] [--tsv] [e1 e2 … | all]
//! ```
//!
//! `--fast` shrinks budgets and grids (smoke runs); `--tsv` additionally
//! emits each table as tab-separated values for downstream plotting.

use st_lab::{run_experiment, LabConfig, ALL_EXPERIMENTS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let tsv = args.iter().any(|a| a == "--tsv");
    let cfg = if fast {
        LabConfig::fast()
    } else {
        LabConfig::full()
    };
    let mut ids: Vec<String> = args
        .into_iter()
        .filter(|a| a != "--fast" && a != "--tsv")
        .map(|a| a.to_lowercase())
        .collect();
    if ids.is_empty() || ids.iter().any(|a| a == "all") {
        ids = ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }

    let mut failures = 0;
    for id in &ids {
        match run_experiment(id, &cfg) {
            Some(result) => {
                println!("{}", result.render());
                if tsv {
                    for (name, table) in &result.tables {
                        println!("#tsv {} — {name}", result.id);
                        print!("{}", table.to_tsv());
                    }
                }
                if !result.pass {
                    failures += 1;
                }
            }
            None => {
                eprintln!("unknown experiment: {id} (known: e1..e7, all)");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!("{failures} experiment(s) failed");
        std::process::exit(1);
    }
}
