//! `stlab` — runs the paper's experiments and prints their tables.
//!
//! Usage:
//! ```text
//! stlab [--fast] [--tsv] [--threads N]
//!       [--outcomes PATH] [--resume PATH]
//!       [e1 e2 … | all]
//! stlab --scenario NAME [--scenario NAME …] [--fast] [--threads N]
//! stlab --list-scenarios
//! stlab --drop-half-store PATH
//! ```
//!
//! `--fast` shrinks budgets and grids (smoke runs); `--tsv` additionally
//! emits each table as tab-separated values for downstream plotting;
//! `--threads N` sets the campaign worker count (default: one per hardware
//! thread — results are identical for every value, see `st-campaign`).
//!
//! Persistence: `--outcomes PATH` writes every campaign scenario's outcome
//! to a versioned store file, checkpointed after **every experiment** (a
//! killed sweep keeps everything finished so far); `--resume PATH` loads
//! such a store first and skips every scenario it already holds (matching
//! experiment, rank, and unchanged spec), carrying the rest of the store
//! forward — resuming a subset of experiments never discards the others'
//! stored outcomes. An interrupted sweep resumed this way renders
//! byte-identical tables — and rewrites a byte-identical store — compared
//! to an uninterrupted run. A store written by a different schema version
//! is refused with a typed error (exit code 2), never silently partially
//! resumed.
//!
//! Scenarios: `--scenario NAME` (repeatable) runs entries of the named
//! fault-injection catalog (`SCENARIOS.md`) as campaigns with the
//! always-on invariant checker; any recorded violation prints a replayable
//! counterexample schedule and exits non-zero. `--list-scenarios` prints
//! the catalog; an unknown name exits 2 with the catalog on stderr.
//!
//! `--drop-half-store PATH` is the maintenance verb CI's resume-smoke
//! uses: it loads a store, keeps every other entry, and writes it back —
//! a deterministic "interrupt" for differential testing.

use std::process::ExitCode;
use std::sync::Arc;

use st_campaign::OutcomeStore;
use st_lab::{run_experiment, scenarios, LabConfig, LabSession, ALL_EXPERIMENTS};

struct Args {
    fast: bool,
    tsv: bool,
    threads: usize,
    outcomes: Option<String>,
    resume: Option<String>,
    drop_half: Option<String>,
    scenarios: Vec<String>,
    list_scenarios: bool,
    ids: Vec<String>,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = Args {
        fast: false,
        tsv: false,
        threads: usize::MAX,
        outcomes: None,
        resume: None,
        drop_half: None,
        scenarios: Vec::new(),
        list_scenarios: false,
        ids: Vec::new(),
    };
    let mut i = 0usize;
    let value_of = |i: &mut usize, flag: &str, argv: &[String]| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| {
            eprintln!("{flag} needs a value");
            std::process::exit(2);
        })
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--fast" => args.fast = true,
            "--tsv" => args.tsv = true,
            "--threads" => {
                let value = value_of(&mut i, "--threads", &argv);
                args.threads = value.parse().unwrap_or_else(|_| {
                    eprintln!("--threads expects a positive integer, got {value:?}");
                    std::process::exit(2);
                });
            }
            "--outcomes" => args.outcomes = Some(value_of(&mut i, "--outcomes", &argv)),
            "--resume" => args.resume = Some(value_of(&mut i, "--resume", &argv)),
            "--drop-half-store" => {
                args.drop_half = Some(value_of(&mut i, "--drop-half-store", &argv))
            }
            "--scenario" => args.scenarios.push(value_of(&mut i, "--scenario", &argv)),
            "--list-scenarios" => args.list_scenarios = true,
            other => args.ids.push(other.to_lowercase()),
        }
        i += 1;
    }
    args
}

fn print_catalog(to_stderr: bool) {
    let mut text = String::from("known scenarios:\n");
    for e in scenarios::CATALOG {
        text.push_str(&format!("  {:<18} {}\n", e.name, e.fault));
    }
    if to_stderr {
        eprint!("{text}");
    } else {
        print!("{text}");
    }
}

fn main() -> ExitCode {
    let args = parse_args();

    if args.list_scenarios {
        print_catalog(false);
        return ExitCode::SUCCESS;
    }

    // Maintenance verb: truncate a store to every other entry and exit.
    if let Some(path) = &args.drop_half {
        let mut store = match OutcomeStore::load(path) {
            Ok(store) => store,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(2);
            }
        };
        let before = store.len();
        store.retain(|idx, _| idx % 2 == 0);
        if let Err(e) = store.save(path) {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
        eprintln!("{path}: kept {} of {before} outcomes", store.len());
        return ExitCode::SUCCESS;
    }

    // Resume store, if any. Schema mismatches and corrupt files are typed
    // errors — refuse loudly rather than partially resuming.
    let resume = match &args.resume {
        None => None,
        Some(path) => match OutcomeStore::load(path) {
            Ok(store) => {
                eprintln!("resuming from {path}: {} stored outcomes", store.len());
                Some(store)
            }
            Err(e) => {
                eprintln!("cannot resume from {path}: {e}");
                return ExitCode::from(2);
            }
        },
    };
    let session = if args.outcomes.is_some() || resume.is_some() {
        let mut session = LabSession::new(resume);
        if let Some(path) = &args.outcomes {
            // Checkpoint after every experiment, so a genuine interrupt
            // (Ctrl-C, OOM, CI timeout) leaves a resumable store behind.
            session = session.with_autosave(path);
        }
        Some(Arc::new(session))
    } else {
        None
    };

    let mut cfg = if args.fast {
        LabConfig::fast()
    } else {
        LabConfig::full()
    }
    .with_threads(args.threads);
    if let Some(session) = &session {
        cfg = cfg.with_session(Arc::clone(session));
    }

    // Scenario-catalog mode: run the named fault-injection scenarios with
    // the always-on invariant checker and exit. Names are validated up
    // front — an unknown one is a typed refusal, not a partial run.
    if !args.scenarios.is_empty() {
        let mut entries = Vec::new();
        for name in &args.scenarios {
            match scenarios::find(name) {
                Some(entry) => entries.push(entry),
                None => {
                    eprintln!("unknown scenario: {name}");
                    print_catalog(true);
                    return ExitCode::from(2);
                }
            }
        }
        let mut violations = 0usize;
        let mut broken_fixtures = 0usize;
        for entry in entries {
            let report = scenarios::run_entry(entry, &cfg);
            println!("{}", report.render());
            violations += report.violation_count();
            if entry.expect_violation && report.violation_count() == 0 {
                broken_fixtures += 1;
            }
        }
        if let (Some(path), Some(session)) = (&args.outcomes, &session) {
            let store = session.recorded();
            if let Err(e) = store.save(path) {
                eprintln!("cannot write outcome store {path}: {e}");
                return ExitCode::from(2);
            }
            eprintln!("wrote {} outcomes to {path}", store.len());
        }
        if violations > 0 {
            eprintln!("{violations} invariant violation(s) recorded");
            return ExitCode::FAILURE;
        }
        if broken_fixtures > 0 {
            eprintln!("{broken_fixtures} violation fixture(s) failed to fire");
            return ExitCode::FAILURE;
        }
        return ExitCode::SUCCESS;
    }

    let mut ids = args.ids;
    if ids.is_empty() || ids.iter().any(|a| a == "all") {
        ids = ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }

    let mut failures = 0;
    for id in &ids {
        match run_experiment(id, &cfg) {
            Some(result) => {
                println!("{}", result.render());
                if args.tsv {
                    for (name, table) in &result.tables {
                        println!("#tsv {} — {name}", result.id);
                        print!("{}", table.to_tsv());
                    }
                }
                if !result.pass {
                    failures += 1;
                }
            }
            None => {
                eprintln!("unknown experiment: {id} (known: e1..e8, all)");
                failures += 1;
            }
        }
    }

    // Write the outcome store after the sweep (also when experiments
    // failed: a partial store is exactly what --resume is for).
    if let (Some(path), Some(session)) = (&args.outcomes, &session) {
        let store = session.recorded();
        if let Err(e) = store.save(path) {
            eprintln!("cannot write outcome store {path}: {e}");
            return ExitCode::from(2);
        }
        eprintln!("wrote {} outcomes to {path}", store.len());
    }

    if failures > 0 {
        eprintln!("{failures} experiment(s) failed");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
