//! `stlab` — runs the paper's experiments and prints their tables.
//!
//! See [`HELP`] (`stlab --help`) for usage and the exit-code contract.
//!
//! `--fast` shrinks budgets and grids (smoke runs); `--tsv` additionally
//! emits each table as tab-separated values for downstream plotting;
//! `--threads N` sets the campaign worker count (default: one per hardware
//! thread — results are identical for every value, see `st-campaign`).
//!
//! Persistence: `--outcomes PATH` writes every campaign scenario's outcome
//! to a versioned store file, checkpointed after **every experiment** (a
//! killed sweep keeps everything finished so far); `--resume PATH` loads
//! such a store first and skips every scenario it already holds (matching
//! experiment, rank, and unchanged spec), carrying the rest of the store
//! forward — resuming a subset of experiments never discards the others'
//! stored outcomes. An interrupted sweep resumed this way renders
//! byte-identical tables — and rewrites a byte-identical store — compared
//! to an uninterrupted run. A store written by a different schema version
//! is refused with a typed error (exit code 2), never silently partially
//! resumed.
//!
//! Serving: `--serve ADDR` routes every experiment campaign through the
//! `st-serve` daemon at `ADDR` (see `PROTOCOL.md`) instead of executing
//! in-process. Tables, verdicts, and recorded stores are identical either
//! way — the daemon runs the same engine and the store's canonical form is
//! drive-independent. An unreachable daemon or a typed refusal (protocol
//! or store schema mismatch, daemon at capacity) prints its message and
//! exits 2.
//!
//! Scenarios: `--scenario NAME` (repeatable) runs entries of the named
//! fault-injection catalog (`SCENARIOS.md`) as campaigns with the
//! always-on invariant checker; any recorded violation prints a replayable
//! counterexample schedule and exits 1. `--list-scenarios` prints the
//! catalog; an unknown name exits 2 with the catalog on stderr.
//!
//! Fuzzing: `stlab fuzz` runs a deterministic coverage-guided fuzz session
//! over generator-spec space (see `SCENARIOS.md`, "Fuzzing & corpus"):
//! `--budget N` scenarios total, `--master-seed N` for derivation,
//! `--corpus PATH` to persist (and resume) the session's outcome store,
//! `--shrink` to delta-debug the first finding to a minimal
//! still-violating scenario. Sessions are byte-identical for every
//! `--threads` value and across interrupt→resume splits of the corpus.
//!
//! Counterexamples: `--save-counterexample PATH` (in `fuzz` or
//! `--scenario` mode) writes the first finding as canonical JSON;
//! `--replay PATH` loads one and re-executes its recorded schedule under
//! the invariant checker, reporting whether the violation reproduced.
//!
//! `--drop-half-store PATH` is the maintenance verb CI's resume-smoke
//! uses: it loads a store, keeps every other entry, and writes it back —
//! a deterministic "interrupt" for differential testing.

use std::process::ExitCode;
use std::sync::Arc;

use st_campaign::{Counterexample, OutcomeStore};
use st_lab::{fuzz, run_experiment, scenarios, LabConfig, LabSession, ALL_EXPERIMENTS};

/// The `--help` text, including the exit-code contract asserted by the CLI
/// tests.
const HELP: &str = "\
stlab — experiments, fault scenarios, and the invariant fuzzer

USAGE:
  stlab [OPTIONS] [e1 e2 ... | all]        run experiments (default: all)
  stlab --scenario NAME [--scenario ...]   run fault-injection scenarios
  stlab fuzz [--budget N] [--master-seed N] [--corpus PATH] [--shrink]
  stlab --replay PATH                      re-execute a saved counterexample
  stlab --list-scenarios                   print the scenario catalog
  stlab --drop-half-store PATH             store maintenance (CI resume smoke)

OPTIONS:
  --fast                     smaller grids and budgets (smoke runs)
  --tsv                      also emit tables as TSV
  --threads N                campaign workers (results identical for every N)
  --serve ADDR               route campaigns through the st-serve daemon at
                             ADDR (tables and stores identical to local runs;
                             unreachable daemon or typed refusal exits 2)
  --sizes N,N,...            E9 universe-size axis (default: 64 fast,
                             64,256,1024 full)
  --outcomes PATH            record campaign outcomes to a versioned store
  --resume PATH              resume from a recorded store
  --budget N                 fuzz: total scenario budget (default 64)
  --master-seed N            fuzz: derivation seed (default 3)
  --corpus PATH              fuzz: load (if present) and save the corpus store
  --shrink                   fuzz: delta-debug the first finding
  --save-counterexample PATH write the first finding as canonical JSON
  --replay PATH              re-execute a saved counterexample
  --help                     this text

EXIT CODES:
  0  clean: no invariant violation, every experiment expectation met
  1  an invariant violation was recorded (or an experiment failed, or a
     violation fixture failed to fire)
  2  usage errors: unknown flag/experiment/scenario, unreadable or
     schema-mismatched store/counterexample files
";

struct Args {
    fast: bool,
    tsv: bool,
    threads: usize,
    sizes: Option<Vec<usize>>,
    serve: Option<String>,
    outcomes: Option<String>,
    resume: Option<String>,
    drop_half: Option<String>,
    scenarios: Vec<String>,
    list_scenarios: bool,
    fuzz: bool,
    budget: Option<usize>,
    master_seed: Option<u64>,
    corpus: Option<String>,
    shrink: bool,
    save_counterexample: Option<String>,
    replay: Option<String>,
    help: bool,
    ids: Vec<String>,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = Args {
        fast: false,
        tsv: false,
        threads: usize::MAX,
        sizes: None,
        serve: None,
        outcomes: None,
        resume: None,
        drop_half: None,
        scenarios: Vec::new(),
        list_scenarios: false,
        fuzz: false,
        budget: None,
        master_seed: None,
        corpus: None,
        shrink: false,
        save_counterexample: None,
        replay: None,
        help: false,
        ids: Vec::new(),
    };
    let mut i = 0usize;
    let value_of = |i: &mut usize, flag: &str, argv: &[String]| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| {
            eprintln!("{flag} needs a value");
            std::process::exit(2);
        })
    };
    let parsed = |flag: &str, value: String| -> u64 {
        value.parse().unwrap_or_else(|_| {
            eprintln!("{flag} expects a non-negative integer, got {value:?}");
            std::process::exit(2);
        })
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--fast" => args.fast = true,
            "--tsv" => args.tsv = true,
            "--threads" => {
                let value = value_of(&mut i, "--threads", &argv);
                args.threads = value.parse().unwrap_or_else(|_| {
                    eprintln!("--threads expects a positive integer, got {value:?}");
                    std::process::exit(2);
                });
            }
            "--sizes" => {
                let value = value_of(&mut i, "--sizes", &argv);
                let sizes: Vec<usize> = value
                    .split(',')
                    .map(|s| {
                        s.trim().parse().unwrap_or_else(|_| {
                            eprintln!("--sizes expects comma-separated sizes, got {value:?}");
                            std::process::exit(2);
                        })
                    })
                    .collect();
                if sizes.is_empty() {
                    eprintln!("--sizes needs at least one size");
                    std::process::exit(2);
                }
                for &n in &sizes {
                    if n == 0 {
                        eprintln!("--sizes: a universe needs at least one process, got 0");
                        std::process::exit(2);
                    }
                    if n > st_core::MAX_PROCESSES {
                        eprintln!(
                            "--sizes: {n} exceeds MAX_PROCESSES ({})",
                            st_core::MAX_PROCESSES
                        );
                        std::process::exit(2);
                    }
                }
                args.sizes = Some(sizes);
            }
            "--serve" => args.serve = Some(value_of(&mut i, "--serve", &argv)),
            "--outcomes" => args.outcomes = Some(value_of(&mut i, "--outcomes", &argv)),
            "--resume" => args.resume = Some(value_of(&mut i, "--resume", &argv)),
            "--drop-half-store" => {
                args.drop_half = Some(value_of(&mut i, "--drop-half-store", &argv))
            }
            "--scenario" => args.scenarios.push(value_of(&mut i, "--scenario", &argv)),
            "--list-scenarios" => args.list_scenarios = true,
            "fuzz" => args.fuzz = true,
            "--budget" => {
                args.budget = Some(parsed("--budget", value_of(&mut i, "--budget", &argv)) as usize)
            }
            "--master-seed" => {
                args.master_seed = Some(parsed(
                    "--master-seed",
                    value_of(&mut i, "--master-seed", &argv),
                ))
            }
            "--corpus" => args.corpus = Some(value_of(&mut i, "--corpus", &argv)),
            "--shrink" => args.shrink = true,
            "--save-counterexample" => {
                args.save_counterexample = Some(value_of(&mut i, "--save-counterexample", &argv))
            }
            "--replay" => args.replay = Some(value_of(&mut i, "--replay", &argv)),
            "--help" | "-h" => args.help = true,
            other => args.ids.push(other.to_lowercase()),
        }
        i += 1;
    }
    args
}

fn print_catalog(to_stderr: bool) {
    let mut text = String::from("known scenarios:\n");
    for e in scenarios::CATALOG {
        text.push_str(&format!("  {:<18} {}\n", e.name, e.fault));
    }
    if to_stderr {
        eprint!("{text}");
    } else {
        print!("{text}");
    }
}

/// Writes `ce` to `path`; exit-2 on failure, logged either way.
fn save_counterexample(ce: &Counterexample, path: &str) -> Result<(), ExitCode> {
    if let Err(e) = ce.save(path) {
        eprintln!("cannot write counterexample {path}: {e}");
        return Err(ExitCode::from(2));
    }
    eprintln!("wrote counterexample to {path}: {ce}");
    Ok(())
}

/// The `--replay PATH` verb: re-execute a saved counterexample under the
/// checker. Exit 1 when the violation reproduces (it is, after all, a
/// violation), 0 when the replay comes back clean.
fn replay_verb(path: &str) -> ExitCode {
    let ce = match Counterexample::load(path) {
        Ok(ce) => ce,
        Err(e) => {
            eprintln!("cannot load counterexample {path}: {e}");
            return ExitCode::from(2);
        }
    };
    println!("replaying {ce}");
    let (outcome, reproduced) = ce.replay();
    for v in &outcome.violations {
        println!("  VIOLATION [{}]: {v}", outcome.label);
    }
    println!(
        "replay verdict: {}",
        if reproduced {
            "reproduced (all original violation kinds fired again)"
        } else {
            "NOT reproduced"
        }
    );
    if outcome.violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The `fuzz` verb. Violations found exit 1; corpus/counterexample I/O
/// errors exit 2.
fn fuzz_verb(args: &Args, cfg: &LabConfig) -> ExitCode {
    let opts = fuzz::FuzzOptions {
        budget: args.budget.unwrap_or(fuzz::DEFAULT_BUDGET),
        master_seed: args.master_seed.unwrap_or(fuzz::DEFAULT_MASTER_SEED),
        shrink: args.shrink,
    };
    // The corpus store doubles as resume input (when the file exists) and
    // session output.
    let resume = match &args.corpus {
        Some(path) if std::path::Path::new(path).exists() => match OutcomeStore::load(path) {
            Ok(store) => {
                eprintln!(
                    "resuming corpus from {path}: {} stored outcomes",
                    store.len()
                );
                Some(store)
            }
            Err(e) => {
                eprintln!("cannot resume corpus from {path}: {e}");
                return ExitCode::from(2);
            }
        },
        _ => None,
    };
    let mut record = OutcomeStore::new();
    let run = fuzz::run_fuzz(cfg, &opts, resume.as_ref(), Some(&mut record));
    print!("{}", run.rendered);
    if let Some(path) = &args.corpus {
        if let Err(e) = record.save(path) {
            eprintln!("cannot write corpus store {path}: {e}");
            return ExitCode::from(2);
        }
        eprintln!("wrote corpus store to {path}: {} outcomes", record.len());
    }
    if let Some(path) = &args.save_counterexample {
        match &run.counterexample {
            Some(ce) => {
                if let Err(code) = save_counterexample(ce, path) {
                    return code;
                }
            }
            None => eprintln!("no finding — nothing to save to {path}"),
        }
    }
    if run.report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "{} invariant finding(s) recorded",
            run.report.findings.len()
        );
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args = parse_args();

    if args.help {
        print!("{HELP}");
        return ExitCode::SUCCESS;
    }

    if args.list_scenarios {
        print_catalog(false);
        return ExitCode::SUCCESS;
    }

    if let Some(path) = &args.replay {
        return replay_verb(path);
    }

    // Maintenance verb: truncate a store to every other entry and exit.
    if let Some(path) = &args.drop_half {
        let mut store = match OutcomeStore::load(path) {
            Ok(store) => store,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(2);
            }
        };
        let before = store.len();
        store.retain(|idx, _| idx % 2 == 0);
        if let Err(e) = store.save(path) {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
        eprintln!("{path}: kept {} of {before} outcomes", store.len());
        return ExitCode::SUCCESS;
    }

    // Resume store, if any. Schema mismatches and corrupt files are typed
    // errors — refuse loudly rather than partially resuming.
    let resume = match &args.resume {
        None => None,
        Some(path) => match OutcomeStore::load(path) {
            Ok(store) => {
                eprintln!("resuming from {path}: {} stored outcomes", store.len());
                Some(store)
            }
            Err(e) => {
                eprintln!("cannot resume from {path}: {e}");
                return ExitCode::from(2);
            }
        },
    };
    let session = if args.outcomes.is_some() || resume.is_some() {
        let mut session = LabSession::new(resume);
        if let Some(path) = &args.outcomes {
            // Checkpoint after every experiment, so a genuine interrupt
            // (Ctrl-C, OOM, CI timeout) leaves a resumable store behind.
            session = session.with_autosave(path);
        }
        Some(Arc::new(session))
    } else {
        None
    };

    let mut cfg = if args.fast {
        LabConfig::fast()
    } else {
        LabConfig::full()
    }
    .with_threads(args.threads);
    if let Some(sizes) = &args.sizes {
        cfg = cfg.with_sizes(sizes.clone());
    }
    if let Some(session) = &session {
        cfg = cfg.with_session(Arc::clone(session));
    }

    if let Some(addr) = &args.serve {
        if args.fuzz {
            eprintln!("stlab fuzz does not support --serve (fuzz sessions are local)");
            return ExitCode::from(2);
        }
        // Ping before any work: an unreachable daemon is a typed exit-2
        // up front, not a mid-sweep surprise.
        if let Err(e) = st_serve::ServeClient::new(addr).hello() {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
        cfg = cfg.with_serve(addr.clone());
    }

    if args.fuzz {
        return fuzz_verb(&args, &cfg);
    }

    // Scenario-catalog mode: run the named fault-injection scenarios with
    // the always-on invariant checker and exit. Names are validated up
    // front — an unknown one is a typed refusal, not a partial run.
    if !args.scenarios.is_empty() {
        let mut entries = Vec::new();
        for name in &args.scenarios {
            match scenarios::find(name) {
                Some(entry) => entries.push(entry),
                None => {
                    eprintln!("unknown scenario: {name}");
                    print_catalog(true);
                    return ExitCode::from(2);
                }
            }
        }
        let mut violations = 0usize;
        let mut broken_fixtures = 0usize;
        let mut first_ce: Option<Counterexample> = None;
        for entry in entries {
            let report = scenarios::run_entry(entry, &cfg);
            println!("{}", report.render());
            violations += report.violation_count();
            if entry.expect_violation && report.violation_count() == 0 {
                broken_fixtures += 1;
            }
            if first_ce.is_none() {
                first_ce = report.first_counterexample();
            }
        }
        if let Some(path) = &args.save_counterexample {
            match &first_ce {
                Some(ce) => {
                    if let Err(code) = save_counterexample(ce, path) {
                        return code;
                    }
                }
                None => eprintln!("no violation — nothing to save to {path}"),
            }
        }
        if let (Some(path), Some(session)) = (&args.outcomes, &session) {
            let store = session.recorded();
            if let Err(e) = store.save(path) {
                eprintln!("cannot write outcome store {path}: {e}");
                return ExitCode::from(2);
            }
            eprintln!("wrote {} outcomes to {path}", store.len());
        }
        if violations > 0 {
            eprintln!("{violations} invariant violation(s) recorded");
            return ExitCode::FAILURE;
        }
        if broken_fixtures > 0 {
            eprintln!("{broken_fixtures} violation fixture(s) failed to fire");
            return ExitCode::FAILURE;
        }
        return ExitCode::SUCCESS;
    }

    let mut ids = args.ids;
    if ids.is_empty() || ids.iter().any(|a| a == "all") {
        ids = ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }
    // Unknown experiment ids are usage errors (exit 2), validated up front
    // so a typo never half-runs a sweep.
    for id in &ids {
        if !ALL_EXPERIMENTS.contains(&id.as_str()) {
            eprintln!("unknown experiment: {id} (known: e1..e9, all)");
            return ExitCode::from(2);
        }
    }

    let mut failures = 0;
    for id in &ids {
        match run_experiment(id, &cfg) {
            Some(result) => {
                println!("{}", result.render());
                if args.tsv {
                    for (name, table) in &result.tables {
                        println!("#tsv {} — {name}", result.id);
                        print!("{}", table.to_tsv());
                    }
                }
                if !result.pass {
                    failures += 1;
                }
            }
            None => unreachable!("ids validated against ALL_EXPERIMENTS"),
        }
    }

    // Write the outcome store after the sweep (also when experiments
    // failed: a partial store is exactly what --resume is for).
    if let (Some(path), Some(session)) = (&args.outcomes, &session) {
        let store = session.recorded();
        if let Err(e) = store.save(path) {
            eprintln!("cannot write outcome store {path}: {e}");
            return ExitCode::from(2);
        }
        eprintln!("wrote {} outcomes to {path}", store.len());
    }

    if failures > 0 {
        eprintln!("{failures} experiment(s) failed");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
