//! `stlab` — runs the paper's experiments and prints their tables.
//!
//! Usage:
//! ```text
//! stlab [--fast] [--tsv] [--threads N]
//!       [--outcomes PATH] [--resume PATH]
//!       [e1 e2 … | all]
//! stlab --drop-half-store PATH
//! ```
//!
//! `--fast` shrinks budgets and grids (smoke runs); `--tsv` additionally
//! emits each table as tab-separated values for downstream plotting;
//! `--threads N` sets the campaign worker count (default: one per hardware
//! thread — results are identical for every value, see `st-campaign`).
//!
//! Persistence: `--outcomes PATH` writes every campaign scenario's outcome
//! to a versioned store file, checkpointed after **every experiment** (a
//! killed sweep keeps everything finished so far); `--resume PATH` loads
//! such a store first and skips every scenario it already holds (matching
//! experiment, rank, and unchanged spec), carrying the rest of the store
//! forward — resuming a subset of experiments never discards the others'
//! stored outcomes. An interrupted sweep resumed this way renders
//! byte-identical tables — and rewrites a byte-identical store — compared
//! to an uninterrupted run. A store written by a different schema version
//! is refused with a typed error (exit code 2), never silently partially
//! resumed.
//!
//! `--drop-half-store PATH` is the maintenance verb CI's resume-smoke
//! uses: it loads a store, keeps every other entry, and writes it back —
//! a deterministic "interrupt" for differential testing.

use std::process::ExitCode;
use std::sync::Arc;

use st_campaign::OutcomeStore;
use st_lab::{run_experiment, LabConfig, LabSession, ALL_EXPERIMENTS};

struct Args {
    fast: bool,
    tsv: bool,
    threads: usize,
    outcomes: Option<String>,
    resume: Option<String>,
    drop_half: Option<String>,
    ids: Vec<String>,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = Args {
        fast: false,
        tsv: false,
        threads: usize::MAX,
        outcomes: None,
        resume: None,
        drop_half: None,
        ids: Vec::new(),
    };
    let mut i = 0usize;
    let value_of = |i: &mut usize, flag: &str, argv: &[String]| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| {
            eprintln!("{flag} needs a value");
            std::process::exit(2);
        })
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--fast" => args.fast = true,
            "--tsv" => args.tsv = true,
            "--threads" => {
                let value = value_of(&mut i, "--threads", &argv);
                args.threads = value.parse().unwrap_or_else(|_| {
                    eprintln!("--threads expects a positive integer, got {value:?}");
                    std::process::exit(2);
                });
            }
            "--outcomes" => args.outcomes = Some(value_of(&mut i, "--outcomes", &argv)),
            "--resume" => args.resume = Some(value_of(&mut i, "--resume", &argv)),
            "--drop-half-store" => {
                args.drop_half = Some(value_of(&mut i, "--drop-half-store", &argv))
            }
            other => args.ids.push(other.to_lowercase()),
        }
        i += 1;
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();

    // Maintenance verb: truncate a store to every other entry and exit.
    if let Some(path) = &args.drop_half {
        let mut store = match OutcomeStore::load(path) {
            Ok(store) => store,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(2);
            }
        };
        let before = store.len();
        store.retain(|idx, _| idx % 2 == 0);
        if let Err(e) = store.save(path) {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
        eprintln!("{path}: kept {} of {before} outcomes", store.len());
        return ExitCode::SUCCESS;
    }

    // Resume store, if any. Schema mismatches and corrupt files are typed
    // errors — refuse loudly rather than partially resuming.
    let resume = match &args.resume {
        None => None,
        Some(path) => match OutcomeStore::load(path) {
            Ok(store) => {
                eprintln!("resuming from {path}: {} stored outcomes", store.len());
                Some(store)
            }
            Err(e) => {
                eprintln!("cannot resume from {path}: {e}");
                return ExitCode::from(2);
            }
        },
    };
    let session = if args.outcomes.is_some() || resume.is_some() {
        let mut session = LabSession::new(resume);
        if let Some(path) = &args.outcomes {
            // Checkpoint after every experiment, so a genuine interrupt
            // (Ctrl-C, OOM, CI timeout) leaves a resumable store behind.
            session = session.with_autosave(path);
        }
        Some(Arc::new(session))
    } else {
        None
    };

    let mut cfg = if args.fast {
        LabConfig::fast()
    } else {
        LabConfig::full()
    }
    .with_threads(args.threads);
    if let Some(session) = &session {
        cfg = cfg.with_session(Arc::clone(session));
    }

    let mut ids = args.ids;
    if ids.is_empty() || ids.iter().any(|a| a == "all") {
        ids = ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }

    let mut failures = 0;
    for id in &ids {
        match run_experiment(id, &cfg) {
            Some(result) => {
                println!("{}", result.render());
                if args.tsv {
                    for (name, table) in &result.tables {
                        println!("#tsv {} — {name}", result.id);
                        print!("{}", table.to_tsv());
                    }
                }
                if !result.pass {
                    failures += 1;
                }
            }
            None => {
                eprintln!("unknown experiment: {id} (known: e1..e8, all)");
                failures += 1;
            }
        }
    }

    // Write the outcome store after the sweep (also when experiments
    // failed: a partial store is exactly what --resume is for).
    if let (Some(path), Some(session)) = (&args.outcomes, &session) {
        let store = session.recorded();
        if let Err(e) = store.save(path) {
            eprintln!("cannot write outcome store {path}: {e}");
            return ExitCode::from(2);
        }
        eprintln!("wrote {} outcomes to {path}", store.len());
    }

    if failures > 0 {
        eprintln!("{failures} experiment(s) failed");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
