//! Experiment configuration and result packaging.

use crate::table::Table;

/// Scales experiment budgets: `fast` keeps everything test-suite friendly,
/// `full` is the paper-grade run used for EXPERIMENTS.md.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LabConfig {
    /// Reduce grids and budgets for quick runs (tests, smoke checks).
    pub fast: bool,
    /// Base seed for all randomized workloads.
    pub seed: u64,
    /// Worker threads for campaign-backed experiments (`usize::MAX` = one
    /// per hardware thread). Results are thread-count independent — the
    /// campaign engine merges outcomes in rank order — so this only moves
    /// wall-clock.
    pub threads: usize,
}

impl LabConfig {
    /// Paper-grade configuration.
    pub fn full() -> Self {
        LabConfig {
            fast: false,
            seed: 0xE1AC_5EED,
            threads: usize::MAX,
        }
    }

    /// Test-suite configuration (small grids, small budgets).
    pub fn fast() -> Self {
        LabConfig {
            fast: true,
            seed: 0xE1AC_5EED,
            threads: usize::MAX,
        }
    }

    /// Overrides the campaign worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Scales a step budget.
    pub fn budget(&self, full: u64) -> u64 {
        if self.fast {
            (full / 8).max(50_000)
        } else {
            full
        }
    }
}

/// The outcome of one experiment: tables plus a pass verdict against the
/// paper's claims.
#[derive(Clone, Debug)]
pub struct ExperimentResult {
    /// Experiment id (`E1`..`E7`).
    pub id: &'static str,
    /// Human title, including the paper artifact it regenerates.
    pub title: &'static str,
    /// Named tables.
    pub tables: Vec<(String, Table)>,
    /// Free-form observations.
    pub notes: Vec<String>,
    /// Whether every checked expectation matched the paper.
    pub pass: bool,
}

impl ExperimentResult {
    /// Renders the full experiment block as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {}: {} ==\n", self.id, self.title));
        for (name, table) in &self.tables {
            out.push_str(&format!("\n-- {name} --\n{table}"));
        }
        for note in &self.notes {
            out.push_str(&format!("note: {note}\n"));
        }
        out.push_str(&format!(
            "verdict: {}\n",
            if self.pass {
                "PASS (matches paper)"
            } else {
                "FAIL"
            }
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_scaling() {
        assert_eq!(LabConfig::full().budget(1_000_000), 1_000_000);
        assert_eq!(LabConfig::fast().budget(1_000_000), 125_000);
        assert_eq!(LabConfig::fast().budget(80_000), 50_000);
    }

    #[test]
    fn render_includes_verdict() {
        let r = ExperimentResult {
            id: "E0",
            title: "smoke",
            tables: vec![("t".into(), Table::new(["a"]))],
            notes: vec!["hello".into()],
            pass: true,
        };
        let s = r.render();
        assert!(s.contains("E0") && s.contains("PASS") && s.contains("hello"));
    }
}
