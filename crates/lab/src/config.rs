//! Experiment configuration, the persistence session, and result
//! packaging.

use std::sync::{Arc, Mutex};

use st_campaign::{Campaign, OutcomeStore, ScenarioOutcome};

use crate::table::Table;

/// The persistence half of a lab run: an optional store to resume from and
/// the store every campaign outcome of this run is recorded into.
///
/// One session spans all experiments of one `stlab` invocation; each
/// experiment records under its own campaign key (its id), so a single
/// store file holds the whole lab sweep and `--resume` skips exactly the
/// scenarios whose specs are unchanged.
///
/// Two properties make the session safe to interrupt:
///
/// - the recording store starts as a **copy of the resume store**, so a
///   run over a subset of experiments carries every other experiment's
///   stored outcomes forward instead of erasing them (fresh outcomes
///   replace their `(experiment, rank)` entries; the store's canonical
///   `(campaign, rank)` ordering keeps the merged bytes identical to an
///   uninterrupted run's);
/// - with an [`autosave`](Self::with_autosave) path, the store is written
///   after **every experiment**, so killing the process mid-sweep leaves a
///   checkpoint the next `--resume` picks up — not just the simulated
///   interrupts of the CI smoke test.
#[derive(Debug, Default)]
pub struct LabSession {
    resume: Option<OutcomeStore>,
    record: Mutex<OutcomeStore>,
    autosave: Option<std::path::PathBuf>,
}

impl LabSession {
    /// A session resuming from `resume` (pass `None` to only record). The
    /// recording store is seeded with the resume store's entries — see the
    /// type docs.
    pub fn new(resume: Option<OutcomeStore>) -> Self {
        LabSession {
            record: Mutex::new(resume.clone().unwrap_or_default()),
            resume,
            autosave: None,
        }
    }

    /// Writes the recording store to `path` after every experiment (the
    /// interrupt checkpoint).
    pub fn with_autosave(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.autosave = Some(path.into());
        self
    }

    /// The store recorded so far (clone: the session keeps recording).
    pub fn recorded(&self) -> OutcomeStore {
        self.record
            .lock()
            .expect("no panics while recording")
            .clone()
    }
}

/// Scales experiment budgets: `fast` keeps everything test-suite friendly,
/// `full` is the paper-grade run used for EXPERIMENTS.md.
#[derive(Clone, Debug)]
pub struct LabConfig {
    /// Reduce grids and budgets for quick runs (tests, smoke checks).
    pub fast: bool,
    /// Base seed for all randomized workloads.
    pub seed: u64,
    /// Worker threads for campaign-backed experiments (`usize::MAX` = one
    /// per hardware thread). Results are thread-count independent — the
    /// campaign engine merges outcomes in rank order — so this only moves
    /// wall-clock.
    pub threads: usize,
    /// Outcome persistence (`stlab --outcomes` / `--resume`); `None` runs
    /// every scenario and keeps nothing.
    pub session: Option<Arc<LabSession>>,
    /// Universe sizes for the n-scaling experiment (E9). `None` uses the
    /// mode default — `{64}` in fast, `{64, 256, 1024}` in full; override
    /// with `stlab --sizes`.
    pub sizes: Option<Vec<usize>>,
    /// Route campaigns through an `st-serve` daemon at this address
    /// (`stlab --serve ADDR`) instead of executing in-process. Outcomes —
    /// and therefore tables, verdicts, and recorded stores — are identical
    /// either way; a client error prints its typed message and exits 2
    /// (the CLI's usage/connection error code).
    pub serve: Option<String>,
}

impl LabConfig {
    /// Paper-grade configuration.
    pub fn full() -> Self {
        LabConfig {
            fast: false,
            seed: 0xE1AC_5EED,
            threads: usize::MAX,
            session: None,
            sizes: None,
            serve: None,
        }
    }

    /// Test-suite configuration (small grids, small budgets).
    pub fn fast() -> Self {
        LabConfig {
            fast: true,
            seed: 0xE1AC_5EED,
            threads: usize::MAX,
            session: None,
            sizes: None,
            serve: None,
        }
    }

    /// Overrides the campaign worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Attaches a persistence session.
    pub fn with_session(mut self, session: Arc<LabSession>) -> Self {
        self.session = Some(session);
        self
    }

    /// Overrides the E9 universe-size axis.
    pub fn with_sizes(mut self, sizes: Vec<usize>) -> Self {
        self.sizes = Some(sizes);
        self
    }

    /// Routes campaigns through the `st-serve` daemon at `addr`.
    pub fn with_serve(mut self, addr: impl Into<String>) -> Self {
        self.serve = Some(addr.into());
        self
    }

    /// The effective universe-size axis for the n-scaling experiment:
    /// the explicit override if set, otherwise `{64}` in fast mode and
    /// `{64, 256, 1024}` in full mode. Sizes above 64 exceed
    /// `st_core::PROCSET_CAPACITY`, so only the lean (O(n)-state)
    /// workloads can run there; n = 1024 is budget-bounded (lean
    /// stabilization costs ~n³ fleet steps) and reported as an
    /// informational, violation-checked row.
    pub fn sizes(&self) -> Vec<usize> {
        match &self.sizes {
            Some(s) => s.clone(),
            None if self.fast => vec![64],
            None => vec![64, 256, 1024],
        }
    }

    /// Scales a step budget.
    pub fn budget(&self, full: u64) -> u64 {
        if self.fast {
            (full / 8).max(50_000)
        } else {
            full
        }
    }

    /// Executes a campaign under this configuration: plain
    /// [`Campaign::run_parallel`] without a session, resumable
    /// [`Campaign::run_resumed`] (reuse stored outcomes, record everything
    /// under `key`) with one, or a round trip through an `st-serve` daemon
    /// when [`serve`](Self::serve) is set. Outcome lists are identical all
    /// three ways.
    pub fn run_campaign(&self, key: &str, campaign: &Campaign) -> Vec<ScenarioOutcome> {
        if let Some(addr) = &self.serve {
            return self.run_served(addr, key, campaign);
        }
        match &self.session {
            None => campaign.run_parallel(self.threads),
            Some(session) => {
                let mut record = session.record.lock().expect("no panics while recording");
                let outcomes = campaign.run_resumed(
                    self.threads,
                    key,
                    session.resume.as_ref(),
                    Some(&mut record),
                );
                // Checkpoint after every experiment: a killed sweep keeps
                // everything finished so far. A failing write only warns —
                // the sweep itself is still sound, and the final save (or
                // the next checkpoint) retries the path.
                if let Some(path) = &session.autosave {
                    if let Err(e) = record.save(path) {
                        eprintln!(
                            "warning: cannot checkpoint outcome store {}: {e}",
                            path.display()
                        );
                    }
                }
                outcomes
            }
        }
    }

    /// The `--serve` drive: submit→poll→fetch through
    /// [`st_serve::ServeClient`],
    /// then record the fetched outcomes into the local session exactly as
    /// the in-process drives would (the daemon's store and the session's
    /// store end up with identical entries for `key`). Local `--resume`
    /// skipping does not apply here — the daemon resumes from its own
    /// authoritative state directory instead. Client errors (unreachable
    /// daemon, typed refusals, broken stores) print their message and exit
    /// 2, the CLI's usage/connection error code.
    fn run_served(&self, addr: &str, key: &str, campaign: &Campaign) -> Vec<ScenarioOutcome> {
        let client = st_serve::ServeClient::new(addr);
        let outcomes = match client.run_campaign(key, campaign, st_serve::DEFAULT_POLL) {
            Ok(outcomes) => outcomes,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        };
        if let Some(session) = &self.session {
            let mut record = session.record.lock().expect("no panics while recording");
            // run_campaign verified ranks match the campaign, so scenarios
            // and outcomes zip positionally.
            for (scenario, outcome) in campaign.scenarios().iter().zip(&outcomes) {
                record.record(key, scenario, outcome);
            }
            if let Some(path) = &session.autosave {
                if let Err(e) = record.save(path) {
                    eprintln!(
                        "warning: cannot checkpoint outcome store {}: {e}",
                        path.display()
                    );
                }
            }
        }
        outcomes
    }
}

/// True when no outcome recorded an [`st_campaign::InvariantViolation`] —
/// the campaign experiments AND this into their pass verdict, so the E2–E8
/// grids double as an always-on correctness sweep.
pub fn violation_free(outcomes: &[ScenarioOutcome]) -> bool {
    outcomes.iter().all(|o| o.violations.is_empty())
}

/// The outcome of one experiment: tables plus a pass verdict against the
/// paper's claims.
#[derive(Clone, Debug)]
pub struct ExperimentResult {
    /// Experiment id (`E1`..`E7`).
    pub id: &'static str,
    /// Human title, including the paper artifact it regenerates.
    pub title: &'static str,
    /// Named tables.
    pub tables: Vec<(String, Table)>,
    /// Free-form observations.
    pub notes: Vec<String>,
    /// Whether every checked expectation matched the paper.
    pub pass: bool,
}

impl ExperimentResult {
    /// Renders the full experiment block as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {}: {} ==\n", self.id, self.title));
        for (name, table) in &self.tables {
            out.push_str(&format!("\n-- {name} --\n{table}"));
        }
        for note in &self.notes {
            out.push_str(&format!("note: {note}\n"));
        }
        out.push_str(&format!(
            "verdict: {}\n",
            if self.pass {
                "PASS (matches paper)"
            } else {
                "FAIL"
            }
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_campaign::{FdAbi, FdDetector, GeneratorSpec, Scenario, Workload};
    use st_core::Universe;
    use st_fd::TimeoutPolicy;

    fn tiny_campaign(seeds: std::ops::Range<u64>) -> Campaign {
        let mut campaign = Campaign::new();
        for seed in seeds {
            campaign.push(Scenario::new(
                format!("tiny/seed{seed}"),
                Universe::new(3).unwrap(),
                GeneratorSpec::round_robin(),
                Workload::FdConvergence {
                    k: 1,
                    t: 1,
                    policy: TimeoutPolicy::Increment,
                    abi: FdAbi::MachineSlot,
                    detector: FdDetector::SetBased,
                    certify_membership: false,
                },
                1_000,
                seed,
            ));
        }
        campaign
    }

    /// Resuming a *subset* of experiments must not discard the other
    /// experiments' stored outcomes: the recording store is seeded with
    /// the resume store, and re-records replace in place.
    #[test]
    fn subset_runs_carry_other_experiments_forward() {
        // A "previous run" recorded two experiments.
        let session = Arc::new(LabSession::new(None));
        let cfg = LabConfig::fast()
            .with_threads(1)
            .with_session(session.clone());
        cfg.run_campaign("e2", &tiny_campaign(0..2));
        cfg.run_campaign("e6", &tiny_campaign(2..5));
        let previous = session.recorded();
        assert_eq!(previous.len(), 5);

        // "This run" resumes only e6.
        let subset_session = Arc::new(LabSession::new(Some(previous.clone())));
        let cfg = LabConfig::fast()
            .with_threads(1)
            .with_session(subset_session.clone());
        cfg.run_campaign("e6", &tiny_campaign(2..5));
        let merged = subset_session.recorded();
        assert_eq!(merged.len(), 5, "e2 entries survive an e6-only resume");
        assert_eq!(
            merged.to_json_string(),
            previous.to_json_string(),
            "subset resume rewrites the identical store"
        );
    }

    #[test]
    fn budget_scaling() {
        assert_eq!(LabConfig::full().budget(1_000_000), 1_000_000);
        assert_eq!(LabConfig::fast().budget(1_000_000), 125_000);
        assert_eq!(LabConfig::fast().budget(80_000), 50_000);
    }

    #[test]
    fn render_includes_verdict() {
        let r = ExperimentResult {
            id: "E0",
            title: "smoke",
            tables: vec![("t".into(), Table::new(["a"]))],
            notes: vec!["hello".into()],
            pass: true,
        };
        let s = r.render();
        assert!(s.contains("E0") && s.contains("PASS") && s.contains("hello"));
    }
}
