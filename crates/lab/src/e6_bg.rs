//! E6 — the BG reduction of Theorem 26's proof, executed.
//!
//! `k+1` simulators run `n` simulated processes. The table reports the two
//! properties the proof relies on, measured:
//!
//! - **Property (i)** — with `c ≤ k` crashed simulators, at most `c`
//!   simulated processes stall;
//! - **Property (ii)** — in the simulated schedule, every `(k+1)`-set of
//!   simulated processes is timely with respect to all of them (checked
//!   with the `st-core` analyzer on each surviving simulator's
//!   linearization);
//!
//! plus the reduction output: the simulators' adopted decisions satisfy
//! `(k, k, k+1)`-agreement whenever the simulated algorithm delivers
//! `(k, k, n)`-agreement decisions.

use st_bgsim::{run_reduction, TrivialKDecide};
use st_core::subsets::KSubsets;
use st_core::timeliness::empirical_bound;
use st_core::{ProcSet, ProcessId, Universe, Value};
use st_sched::{CrashAfter, CrashPlan, RoundRobin, SeededRandom};

use crate::config::{ExperimentResult, LabConfig};
use crate::table::Table;

/// Runs E6.
pub fn run(cfg: &LabConfig) -> ExperimentResult {
    let mut table = Table::new([
        "k",
        "n_sim",
        "sim_crashes",
        "stalled_sim",
        "prop_i",
        "max_(k+1)_bound",
        "prop_ii",
        "simulator_values",
        "k_agreement",
    ]);
    let mut pass = true;
    let budget = cfg.budget(4_000_000);

    let grid: &[(usize, usize)] = if cfg.fast {
        &[(1, 4), (2, 5)]
    } else {
        &[(1, 4), (1, 5), (2, 5), (2, 6), (3, 6)]
    };

    for &(k, n_sim) in grid {
        for crashes in 0..=k.min(if cfg.fast { 1 } else { k }) {
            let machines: Vec<TrivialKDecide> = (0..n_sim)
                .map(|u| TrivialKDecide::new(u, k, 300 + u as Value))
                .collect();
            let host = Universe::new(k + 1).unwrap();
            let report = if crashes == 0 {
                let mut src = RoundRobin::new(host);
                run_reduction(k + 1, machines, 128, &mut src, budget)
            } else {
                let crashed: ProcSet = (0..crashes).map(ProcessId::new).collect();
                let plan = CrashPlan::all_at(crashed, 50);
                let mut src = CrashAfter::new(SeededRandom::new(host, cfg.seed), plan);
                run_reduction(k + 1, machines, 128, &mut src, budget)
            };

            let stalled = report.stalled_simulated().len();
            let prop_i = stalled <= crashes;

            // Property (ii) on the last live simulator's linearization.
            let live_sim = k; // highest-indexed simulator never crashes here
            let sched = &report.simulated_schedules[live_sim];
            let sim_universe = Universe::new(n_sim).unwrap();
            let full = ProcSet::full(sim_universe);
            let mut max_bound = 0usize;
            // Only sets of non-stalled processes are owed timeliness.
            let stalled_set = report.stalled_simulated();
            for set in KSubsets::new(sim_universe, k + 1) {
                if !set.is_disjoint(stalled_set) {
                    continue;
                }
                max_bound = max_bound.max(empirical_bound(sched, set, full));
            }
            let prop_ii = max_bound <= 4 * n_sim && sched.len() > n_sim;

            let values: std::collections::BTreeSet<Value> = report
                .simulator_decisions
                .iter()
                .flatten()
                .copied()
                .collect();
            let k_agree = values.len() <= k && report.simulator_decisions[live_sim].is_some();

            table.row([
                k.to_string(),
                n_sim.to_string(),
                crashes.to_string(),
                stalled.to_string(),
                prop_i.to_string(),
                max_bound.to_string(),
                prop_ii.to_string(),
                format!("{values:?}"),
                k_agree.to_string(),
            ]);
            pass &= prop_i && prop_ii && k_agree;
        }
    }

    ExperimentResult {
        id: "E6",
        title: "Theorem 26 proof — the BG reduction, executed and measured",
        tables: vec![("reduction runs".into(), table)],
        notes: vec![
            "prop (i): stalled simulated processes ≤ crashed simulators".into(),
            "prop (ii): every live (k+1)-set timely in the simulated schedule".into(),
        ],
        pass,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e6_matches_paper() {
        let result = run(&LabConfig::fast());
        assert!(result.pass, "{}", result.render());
    }
}
