//! E6 — the BG reduction of Theorem 26's proof, executed.
//!
//! `k+1` simulators run `n` simulated processes. The table reports the two
//! properties the proof relies on, measured:
//!
//! - **Property (i)** — with `c ≤ k` crashed simulators, at most `c`
//!   simulated processes stall;
//! - **Property (ii)** — in the simulated schedule, every `(k+1)`-set of
//!   simulated processes is timely with respect to all of them (checked
//!   with the `st-core` analyzer on each surviving simulator's
//!   linearization);
//!
//! plus the reduction output: the simulators' adopted decisions satisfy
//! `(k, k, k+1)`-agreement whenever the simulated algorithm delivers
//! `(k, k, n)`-agreement decisions.
//!
//! The grid is a campaign (`st-campaign`): each row is a [`Scenario`] with
//! a [`Workload::BgReduction`] cell — the reduction runs inside the
//! scenario, which also measures property (ii) on the live simulator's
//! linearization ([`st_campaign::BgOutcome::max_live_bound`]) so outcomes
//! stay small enough for the outcome store.

use st_campaign::{Campaign, Scenario, Workload};
use st_core::{ProcSet, ProcessId, Universe, Value};
use st_sched::{CrashPlan, GeneratorSpec};

use crate::config::{ExperimentResult, LabConfig};
use crate::table::Table;

/// Runs E6.
pub fn run(cfg: &LabConfig) -> ExperimentResult {
    let mut table = Table::new([
        "k",
        "n_sim",
        "sim_crashes",
        "stalled_sim",
        "prop_i",
        "max_(k+1)_bound",
        "prop_ii",
        "simulator_values",
        "k_agreement",
    ]);
    let mut pass = true;
    let budget = cfg.budget(4_000_000);

    let grid: &[(usize, usize)] = if cfg.fast {
        &[(1, 4), (2, 5)]
    } else {
        &[(1, 4), (1, 5), (2, 5), (2, 6), (3, 6)]
    };

    let mut campaign = Campaign::new();
    let mut rows: Vec<(usize, usize, usize)> = Vec::new();
    for &(k, n_sim) in grid {
        for crashes in 0..=k.min(if cfg.fast { 1 } else { k }) {
            let host = Universe::new(k + 1).unwrap();
            let generator = if crashes == 0 {
                GeneratorSpec::round_robin()
            } else {
                let crashed: ProcSet = (0..crashes).map(ProcessId::new).collect();
                GeneratorSpec::seeded_random(0).crashed(CrashPlan::all_at(crashed, 50))
            };
            campaign.push(Scenario::new(
                format!("k{k}/n{n_sim}/crash{crashes}"),
                host,
                generator,
                Workload::BgReduction {
                    n_sim,
                    k,
                    max_reads: 128,
                },
                budget,
                cfg.seed,
            ));
            rows.push((k, n_sim, crashes));
        }
    }
    let outcomes = cfg.run_campaign("e6", &campaign);
    pass &= crate::config::violation_free(&outcomes);

    for (&(k, n_sim, crashes), outcome) in rows.iter().zip(&outcomes) {
        let report = outcome.data.as_bg().expect("BG campaign");
        let stalled = report.stalled.len();
        let prop_i = stalled <= crashes;
        // Property (ii), measured inside the scenario on the last live
        // simulator's linearization (highest-indexed: it never crashes
        // here).
        let prop_ii = report.max_live_bound <= 4 * n_sim && report.live_sched_len > n_sim;
        let live_sim = k;
        let values: std::collections::BTreeSet<Value> = report
            .simulator_decisions
            .iter()
            .flatten()
            .copied()
            .collect();
        let k_agree = values.len() <= k && report.simulator_decisions[live_sim].is_some();

        table.row([
            k.to_string(),
            n_sim.to_string(),
            crashes.to_string(),
            stalled.to_string(),
            prop_i.to_string(),
            report.max_live_bound.to_string(),
            prop_ii.to_string(),
            format!("{values:?}"),
            k_agree.to_string(),
        ]);
        pass &= prop_i && prop_ii && k_agree;
    }

    ExperimentResult {
        id: "E6",
        title: "Theorem 26 proof — the BG reduction, executed and measured",
        tables: vec![("reduction runs".into(), table)],
        notes: vec![
            "prop (i): stalled simulated processes ≤ crashed simulators".into(),
            "prop (ii): every live (k+1)-set timely in the simulated schedule".into(),
        ],
        pass,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e6_matches_paper() {
        let result = run(&LabConfig::fast());
        assert!(result.pass, "{}", result.render());
        // Golden: the campaign port reproduces the pre-port tables byte for
        // byte at the fixed seed (trailing newline from the capture).
        assert_eq!(
            format!("{}\n", result.render()),
            include_str!("../tests/golden/e6_fast.txt"),
            "E6 output drifted from the golden table"
        );
    }
}
