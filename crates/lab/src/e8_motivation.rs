//! E8 — the paper's motivation, measured: set timeliness succeeds where
//! process timeliness fails.
//!
//! Section 1 of the paper argues that per-process timeliness (the basis of
//! earlier partial-synchrony models) cannot capture sub-consensus synchrony:
//! a set of processes may be timely *as a set* while every member flaps.
//! This experiment runs the two detectors side by side on exactly such a
//! schedule ([`st_sched::AlternatingRotation`]: groups
//! alternate strictly, representatives rotate on growing runs):
//!
//! - the paper's **set-based** Figure 2 k-anti-Ω stabilizes quickly on one
//!   of the groups;
//! - the **process-based** baseline (same machinery, singleton candidates)
//!   keeps flapping for the whole run — every individual's accusation
//!   counter grows forever.
//!
//! The side-by-side is a campaign: per case, one scenario with the
//! set-based detector and one with the process-based baseline (both on the
//! async drive the detectors were transcribed for), over the same
//! alternating-rotation generator spec.

use st_campaign::{Campaign, FdAbi, FdDetector, Scenario, Workload};
use st_core::{ProcSet, Universe};
use st_fd::TimeoutPolicy;
use st_sched::GeneratorSpec;

use crate::config::{ExperimentResult, LabConfig};
use crate::table::Table;

/// Runs E8.
pub fn run(cfg: &LabConfig) -> ExperimentResult {
    let mut table = Table::new([
        "n",
        "k",
        "t",
        "detector",
        "stabilized@step",
        "winnerset",
        "late_flaps",
    ]);
    let mut pass = true;
    let budget = cfg.budget(1_600_000);

    let cases: &[(usize, Vec<ProcSet>)] = &[
        (
            4,
            vec![ProcSet::from_indices([0, 1]), ProcSet::from_indices([2, 3])],
        ),
        (
            6,
            vec![
                ProcSet::from_indices([0, 1, 2]),
                ProcSet::from_indices([3, 4, 5]),
            ],
        ),
    ];
    let cases = if cfg.fast { &cases[..1] } else { cases };

    let mut campaign = Campaign::new();
    let mut rows: Vec<(usize, usize, usize, &Vec<ProcSet>)> = Vec::new();
    for (n, groups) in cases {
        let n = *n;
        let k = groups[0].len();
        let t = n - 2; // maximal t with the witness group as a k-set
        let t = t.max(k);
        let universe = Universe::new(n).unwrap();
        let spec = GeneratorSpec::AlternatingRotation {
            groups: groups.clone(),
            base: 8,
        };
        for detector in [FdDetector::SetBased, FdDetector::ProcessBased] {
            campaign.push(Scenario::new(
                "motivation",
                universe,
                spec.clone(),
                Workload::FdConvergence {
                    k,
                    t,
                    policy: TimeoutPolicy::Increment,
                    abi: FdAbi::Async,
                    detector,
                    certify_membership: false,
                },
                budget,
                cfg.seed,
            ));
        }
        rows.push((n, k, t, groups));
    }

    let outcomes = cfg.run_campaign("e8", &campaign);
    pass &= crate::config::violation_free(&outcomes);
    for ((n, k, t, groups), pair) in rows.iter().zip(outcomes.chunks(2)) {
        // Set-based Figure 2.
        let set_fd = pair[0].data.as_fd().expect("FD campaign");
        match set_fd.stabilization {
            Some(s) if set_fd.late_flaps == 0 => {
                // The stabilized winnerset must be one of the timely groups.
                let is_group = groups.contains(&s.winnerset);
                table.row([
                    n.to_string(),
                    k.to_string(),
                    t.to_string(),
                    "set-based (Figure 2)".to_string(),
                    s.step.to_string(),
                    s.winnerset.to_string(),
                    set_fd.late_flaps.to_string(),
                ]);
                pass &= is_group && s.step < budget / 2;
            }
            _ => {
                table.row([
                    n.to_string(),
                    k.to_string(),
                    t.to_string(),
                    "set-based (Figure 2)".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    set_fd.late_flaps.to_string(),
                ]);
                pass = false;
            }
        }

        // Process-based baseline on the same workload.
        let base_fd = pair[1].data.as_fd().expect("FD campaign");
        table.row([
            n.to_string(),
            k.to_string(),
            t.to_string(),
            "process-based baseline".to_string(),
            "flapping".to_string(),
            "-".to_string(),
            base_fd.late_flaps.to_string(),
        ]);
        pass &= base_fd.late_flaps > 0;
    }

    ExperimentResult {
        id: "E8",
        title: "Motivation — set timeliness succeeds where process timeliness fails",
        tables: vec![("detectors on a set-timely-only schedule".into(), table)],
        notes: vec![
            "workload: groups alternate strictly; every individual flaps (generalized Figure 1)"
                .into(),
            "Figure 2 locks onto a timely group; the per-process baseline never settles".into(),
        ],
        pass,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e8_matches_motivation() {
        let result = run(&LabConfig::fast());
        assert!(result.pass, "{}", result.render());
        // Golden: the campaign port reproduces the pre-port tables byte for
        // byte at the fixed seed (trailing newline from the capture).
        assert_eq!(
            format!("{}\n", result.render()),
            include_str!("../tests/golden/e8_fast.txt"),
            "E8 output drifted from the golden table"
        );
    }
}
