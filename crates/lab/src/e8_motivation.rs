//! E8 — the paper's motivation, measured: set timeliness succeeds where
//! process timeliness fails.
//!
//! Section 1 of the paper argues that per-process timeliness (the basis of
//! earlier partial-synchrony models) cannot capture sub-consensus synchrony:
//! a set of processes may be timely *as a set* while every member flaps.
//! This experiment runs the two detectors side by side on exactly such a
//! schedule ([`st_sched::AlternatingRotation`]: groups
//! alternate strictly, representatives rotate on growing runs):
//!
//! - the paper's **set-based** Figure 2 k-anti-Ω stabilizes quickly on one
//!   of the groups;
//! - the **process-based** baseline (same machinery, singleton candidates)
//!   keeps flapping for the whole run — every individual's accusation
//!   counter grows forever.

use st_core::{ProcSet, ProcessId, StepSource, Universe};
use st_fd::convergence::winnerset_stabilization;
use st_fd::{
    KAntiOmega, KAntiOmegaConfig, ProcessTimelyDetector, TimeoutPolicy, BASELINE_WINNERSET_PROBE,
};
use st_sched::AlternatingRotation;
use st_sim::{RunConfig, RunReport, Sim};

use crate::config::{ExperimentResult, LabConfig};
use crate::table::Table;

fn run_set_based<S: StepSource>(
    n: usize,
    k: usize,
    t: usize,
    src: &mut S,
    budget: u64,
) -> RunReport {
    let universe = Universe::new(n).unwrap();
    let mut sim = Sim::new(universe);
    let fd = KAntiOmega::alloc(&mut sim, KAntiOmegaConfig::new(k, t));
    for p in universe.processes() {
        let fd = fd.clone();
        sim.spawn(p, move |ctx| fd.run(ctx)).unwrap();
    }
    sim.run(src, RunConfig::steps(budget)).unwrap();
    sim.report()
}

fn run_process_based<S: StepSource>(
    n: usize,
    k: usize,
    t: usize,
    src: &mut S,
    budget: u64,
) -> RunReport {
    let universe = Universe::new(n).unwrap();
    let mut sim = Sim::new(universe);
    let fd = ProcessTimelyDetector::alloc(&mut sim, k, t, TimeoutPolicy::Increment);
    for p in universe.processes() {
        let fd = fd.clone();
        sim.spawn(p, move |ctx| fd.run(ctx)).unwrap();
    }
    sim.run(src, RunConfig::steps(budget)).unwrap();
    sim.report()
}

fn late_flaps(report: &RunReport, n: usize, key: &str, after: u64) -> usize {
    (0..n)
        .map(|i| {
            report
                .probes
                .timeline(ProcessId::new(i), key)
                .iter()
                .filter(|&&(s, _)| s > after)
                .count()
        })
        .sum()
}

/// Runs E8.
pub fn run(cfg: &LabConfig) -> ExperimentResult {
    let mut table = Table::new([
        "n",
        "k",
        "t",
        "detector",
        "stabilized@step",
        "winnerset",
        "late_flaps",
    ]);
    let mut pass = true;
    let budget = cfg.budget(1_600_000);

    let cases: &[(usize, Vec<ProcSet>)] = &[
        (
            4,
            vec![ProcSet::from_indices([0, 1]), ProcSet::from_indices([2, 3])],
        ),
        (
            6,
            vec![
                ProcSet::from_indices([0, 1, 2]),
                ProcSet::from_indices([3, 4, 5]),
            ],
        ),
    ];
    let cases = if cfg.fast { &cases[..1] } else { cases };

    for (n, groups) in cases {
        let n = *n;
        let k = groups[0].len();
        let t = n - 2; // maximal t with the witness group as a k-set
        let t = t.max(k);
        let universe = Universe::new(n).unwrap();
        let full = ProcSet::full(universe);

        // Set-based Figure 2.
        let mut src = AlternatingRotation::new(groups);
        let report = run_set_based(n, k, t, &mut src, budget);
        let stab = winnerset_stabilization(&report, full);
        let set_flaps = late_flaps(&report, n, st_fd::WINNERSET_PROBE, budget * 3 / 4);
        match stab {
            Some(s) if set_flaps == 0 => {
                // The stabilized winnerset must be one of the timely groups.
                let is_group = groups.contains(&s.winnerset);
                table.row([
                    n.to_string(),
                    k.to_string(),
                    t.to_string(),
                    "set-based (Figure 2)".to_string(),
                    s.step.to_string(),
                    s.winnerset.to_string(),
                    set_flaps.to_string(),
                ]);
                pass &= is_group && s.step < budget / 2;
            }
            _ => {
                table.row([
                    n.to_string(),
                    k.to_string(),
                    t.to_string(),
                    "set-based (Figure 2)".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    set_flaps.to_string(),
                ]);
                pass = false;
            }
        }

        // Process-based baseline on the same workload.
        let mut src = AlternatingRotation::new(groups);
        let report = run_process_based(n, k, t, &mut src, budget);
        let flaps = late_flaps(&report, n, BASELINE_WINNERSET_PROBE, budget * 3 / 4);
        table.row([
            n.to_string(),
            k.to_string(),
            t.to_string(),
            "process-based baseline".to_string(),
            "flapping".to_string(),
            "-".to_string(),
            flaps.to_string(),
        ]);
        pass &= flaps > 0;
    }

    ExperimentResult {
        id: "E8",
        title: "Motivation — set timeliness succeeds where process timeliness fails",
        tables: vec![("detectors on a set-timely-only schedule".into(), table)],
        notes: vec![
            "workload: groups alternate strictly; every individual flaps (generalized Figure 1)"
                .into(),
            "Figure 2 locks onto a timely group; the per-process baseline never settles".into(),
        ],
        pass,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e8_matches_motivation() {
        let result = run(&LabConfig::fast());
        assert!(result.pass, "{}", result.render());
    }
}
