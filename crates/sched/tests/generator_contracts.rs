//! Property tests: every generator's constructive claim holds on long
//! prefixes, for arbitrary parameters and seeds.

use proptest::prelude::*;
use st_core::subsets::KSubsets;
use st_core::timeliness::{empirical_bound, max_q_steps_in_p_free_interval};
use st_core::{ProcSet, StepSource, SystemSpec, Universe};
use st_sched::{
    AlternatingRotation, CrashAfter, CrashPlan, Cycle, Eventually, FictitiousCrash,
    GeneralizedFigure1, GeneratorSpec, RotatingStarvation, RoundRobin, SeededRandom, SetTimely,
};

fn u(n: usize) -> Universe {
    Universe::new(n).unwrap()
}

/// Picks a random non-empty subset of `Π_n` from a bitmask seed.
fn subset(n: usize, bits: u64) -> ProcSet {
    let mask = (1u64 << n) - 1;
    let b = bits & mask;
    if b == 0 {
        ProcSet::from_indices([0])
    } else {
        ProcSet::from_bits(b)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// SetTimely's guarantee holds over random fillers, for any sets and any
    /// bound ≥ 2.
    #[test]
    fn set_timely_guarantee(n in 3usize..=8, pbits in 1u64..255, qbits in 1u64..255,
                            bound in 2usize..6, seed in 0u64..1000) {
        let p = subset(n, pbits);
        let q = subset(n, qbits);
        let filler = SeededRandom::new(u(n), seed);
        let mut gen = SetTimely::new(p, q, bound, filler);
        let s = gen.take_schedule(8_000);
        prop_assert!(empirical_bound(&s, p, q) <= bound);
    }

    /// SetTimely preserves the guarantee under crash plans that keep at least
    /// one P member alive.
    #[test]
    fn set_timely_with_crashes(seed in 0u64..500, crash_step in 0u64..2000) {
        let n = 5;
        let p = ProcSet::from_indices([0, 1]);
        let q = ProcSet::from_indices([2, 3, 4]);
        // Crash p1 and one Q member; p0 stays alive.
        let plan = CrashPlan::new()
            .crash(st_core::ProcessId::new(1), crash_step)
            .crash(st_core::ProcessId::new(3), crash_step / 2);
        let filler = CrashAfter::new(SeededRandom::new(u(n), seed), plan.clone());
        let mut gen = SetTimely::new(p, q, 3, filler).with_crashes(plan);
        let s = gen.take_schedule(8_000);
        prop_assert!(empirical_bound(&s, p, q) <= 3);
        // Crashed processes really stop.
        prop_assert_eq!(s.suffix(4000).occurrences(st_core::ProcessId::new(1)), 0);
    }

    /// GeneralizedFigure1: the set bound holds while each proper subset's
    /// starvation keeps growing between prefix lengths.
    #[test]
    fn figure1_family_contract(n in 3usize..=7, psize in 2usize..=3) {
        prop_assume!(psize < n);
        let p: ProcSet = (0..psize).map(st_core::ProcessId::new).collect();
        let q: ProcSet = (psize..n).map(st_core::ProcessId::new).collect();
        let mut gen = GeneralizedFigure1::new(p, q);
        let bound = gen.guaranteed_bound();
        let s = gen.take_schedule(40_000);
        prop_assert!(empirical_bound(&s, p, q) <= bound);
        for drop in p.iter() {
            let sub = p.without(drop);
            let early = max_q_steps_in_p_free_interval(&s.prefix(4_000), sub, q);
            let late = max_q_steps_in_p_free_interval(&s, sub, q);
            prop_assert!(late > early, "subset without {drop} stopped starving");
        }
    }

    /// RotatingStarvation: every (k+1)-set timely within its guaranteed
    /// bound; every k-set starved beyond any timely constant.
    #[test]
    fn rotating_starvation_contract(n in 3usize..=6, k in 1usize..=2) {
        prop_assume!(k < n);
        let mut gen = RotatingStarvation::new(u(n), k);
        let bound = gen.guaranteed_bound();
        let s = gen.take_schedule(50_000);
        let full = ProcSet::full(u(n));
        for pset in KSubsets::new(u(n), k + 1) {
            prop_assert!(empirical_bound(&s, pset, full) <= bound);
        }
        for kset in KSubsets::new(u(n), k) {
            prop_assert!(max_q_steps_in_p_free_interval(&s, kset, full) > bound);
        }
    }

    /// FictitiousCrash: membership witness at bound 1; starvation of every
    /// (k, t+1) pair grows with the prefix.
    #[test]
    fn fictitious_crash_contract(n in 4usize..=6, t in 2usize..=4, k in 1usize..=2, j_minus_i in 0usize..=1) {
        prop_assume!(k <= t && t < n);
        prop_assume!(j_minus_i < t + 1 - k);
        let i = 1usize;
        let j = i + j_minus_i;
        let spec = SystemSpec::new(i, j, n).unwrap();
        let mut gen = FictitiousCrash::new(spec, t, k);
        let (p, q) = gen.membership_witness();
        let s = gen.take_schedule(60_000);
        prop_assert_eq!(empirical_bound(&s, p, q), 1);
        // Starvation evidence grows for the (k, t+1) pairs.
        let short = st_sched::validate::min_starvation_evidence(&s.prefix(6_000), u(n), k, t + 1);
        let long = st_sched::validate::min_starvation_evidence(&s, u(n), k, t + 1);
        prop_assert!(long > short, "starvation stopped growing: {} vs {}", short, long);
    }

    /// Eventually: the body guarantee holds on the suffix, and the overall
    /// schedule still has a finite bound (prefix absorbed).
    #[test]
    fn eventually_contract(prefix_len in 1u64..500, seed in 0u64..200) {
        let n = 4;
        let p = ProcSet::from_indices([0]);
        let q = ProcSet::from_indices([1, 2, 3]);
        let chaos = SeededRandom::over(q, seed); // P fully starved in prefix
        let body = SetTimely::new(p, q, 4, SeededRandom::new(u(n), seed + 1));
        let mut gen = Eventually::new(chaos, prefix_len, body);
        let s = gen.take_schedule(6_000);
        prop_assert!(empirical_bound(&s.suffix(prefix_len as usize), p, q) <= 4);
        // Overall bound exists and is at most prefix + body bound.
        prop_assert!(empirical_bound(&s, p, q) <= prefix_len as usize + 4);
    }

    /// Cycle: the periodic repetition of a random finite word. For every
    /// pair of sets drawn from the period's participants, the empirical
    /// bound is *stable in the prefix length* (certified via `validate`'s
    /// bound check on nested prefixes): periodicity pins every timeliness
    /// property to one period, the defining contract of the generator.
    #[test]
    fn cycle_contract(n in 2usize..=5, len in 1usize..=12, word_seed in 0u64..500,
                      pbits in 1u64..31, qbits in 1u64..31) {
        // A random period over a random universe.
        let period = SeededRandom::new(u(n), word_seed).take_schedule(len);
        let participants = period.participants();
        let p = subset(n, pbits).intersection(participants);
        let q = subset(n, qbits).intersection(participants);
        prop_assume!(!p.is_empty() && !q.is_empty());
        let mut gen = Cycle::new(period.clone());
        let s = gen.take_schedule(len * 64);
        // The bound over many periods is already reached after two periods
        // plus slack (any P-free Q-run spans at most one seam), and the
        // certified bound never grows with longer prefixes.
        let bound = empirical_bound(&s, p, q);
        prop_assert!(
            st_sched::validate::certify_timely(
                &mut Cycle::new(period.clone()), len * 256, p, q, bound
            ).is_ok(),
            "cycle bound must be stable across prefix lengths"
        );
        // And it is tight: a longer prefix reproduces exactly it.
        let longer = Cycle::new(period).take_schedule(len * 256);
        prop_assert_eq!(empirical_bound(&longer, p, q), bound);
    }

    /// AlternatingRotation: every group is timely (certified at the
    /// guaranteed bound via `validate`), while every singleton starves with
    /// growing evidence — the "set timely, no member timely" contract the
    /// motivation experiment relies on.
    #[test]
    fn alternating_rotation_contract(split in 1usize..=3, extra in 0usize..=2,
                                     base in 1u64..=8) {
        // Two disjoint groups covering Π_n: [0, split) and [split, n).
        let n = split + 1 + extra;
        let g0: ProcSet = (0..split).map(st_core::ProcessId::new).collect();
        let g1: ProcSet = (split..n).map(st_core::ProcessId::new).collect();
        let groups = vec![g0, g1];
        let gen = AlternatingRotation::with_base(&groups, base);
        let bound = gen.guaranteed_bound();
        prop_assert_eq!(bound, groups.len());
        let full = ProcSet::full(u(n));
        // Certify each group's claimed bound with the validate helper.
        for g in &groups {
            prop_assert!(
                st_sched::validate::certify_timely(
                    &mut AlternatingRotation::with_base(&groups, base),
                    60_000, *g, full, bound
                ).is_ok(),
                "group {} must be timely at bound {}", g, bound
            );
        }
        // Singletons of a multi-member group starve unboundedly: evidence
        // grows between nested prefixes (validate's starvation measure).
        let s = AlternatingRotation::with_base(&groups, base).take_schedule(120_000);
        for (g, single) in groups.iter().zip([0usize, split]) {
            if g.len() < 2 {
                continue; // a singleton group IS its set: timely by the above
            }
            let pset = ProcSet::from_indices([single]);
            let early = max_q_steps_in_p_free_interval(&s.prefix(12_000), pset, full);
            let late = max_q_steps_in_p_free_interval(&s, pset, full);
            prop_assert!(late > early && late > 2 * bound,
                "singleton p{} must starve unboundedly ({} vs {})", single, early, late);
        }
    }

    /// Round-robin is the synchrony baseline: every singleton timely wrt
    /// everything with bound n.
    #[test]
    fn round_robin_baseline(n in 2usize..=8) {
        let mut gen = RoundRobin::new(u(n));
        let s = gen.take_schedule(2_000);
        for pid in u(n).processes() {
            prop_assert!(empirical_bound(&s, ProcSet::singleton(pid), ProcSet::full(u(n))) <= n);
        }
    }

    /// CrashAfter: a crashed process takes no steps past its crash point and
    /// the schedule stays within the universe.
    #[test]
    fn crash_after_contract(n in 2usize..=6, seed in 0u64..200, crash_step in 0u64..1000) {
        let victim = st_core::ProcessId::new(0);
        let plan = CrashPlan::new().crash(victim, crash_step);
        let mut gen = CrashAfter::new(SeededRandom::new(u(n), seed), plan);
        let s = gen.take_schedule(4_000);
        prop_assert!(s.is_within(u(n)));
        let after = s.suffix(crash_step as usize);
        prop_assert_eq!(after.occurrences(victim), 0);
    }

    /// Flapping: deterministic per (spec, seed), and every recorded timely
    /// segment certifies at the bound.
    #[test]
    fn flapping_contract(n in 3usize..=6, pbits in 1u64..31, bound in 2usize..5,
                         lo in 20u64..100, span in 1u64..100, seed in 0u64..500) {
        let p = subset(n, pbits);
        let q = ProcSet::full(u(n)).difference(p);
        prop_assume!(!q.is_empty());
        let spec = GeneratorSpec::Flapping {
            p, q, bound,
            filler: Box::new(GeneratorSpec::seeded_random(1)),
            timely_dwell: (lo, lo + span),
            untimely_dwell: (lo, lo + span),
            seed_offset: 7,
        };
        let a = spec.build(u(n), seed).take_schedule(6_000);
        let b = spec.build(u(n), seed).take_schedule(6_000);
        prop_assert_eq!(&a, &b, "flapping must be deterministic per (spec, seed)");
        prop_assert!(s_differs_across_seeds(&spec, u(n), seed, 6_000, &a));
        // Hand-build to reach the segment log, and certify it.
        let mut hand = st_sched::FlappingTimely::new(
            p, q, bound, SeededRandom::new(u(n), seed.wrapping_add(1)),
            (lo, lo + span), (lo, lo + span), seed.wrapping_add(7),
        );
        let s = hand.take_schedule(6_000);
        prop_assert_eq!(&s, &a, "spec and hand construction must agree");
        prop_assert!(st_sched::validate::certify_flapping_segments(
            &s, hand.segments(), p, q, bound
        ).is_ok());
    }

    /// GrayFailure: deterministic per (spec, seed); gray processes thinned
    /// yet live on long prefixes.
    #[test]
    fn gray_failure_contract(n in 3usize..=6, gbits in 1u64..15, stretch in 2u64..8,
                             seed in 0u64..500) {
        let gray = subset(n, gbits);
        // A non-gray yardstick is needed for the thinning comparison.
        prop_assume!(gray != ProcSet::full(u(n)));
        let spec = GeneratorSpec::GrayFailure {
            inner: Box::new(GeneratorSpec::seeded_random(0)),
            gray, stretch, seed_offset: 3,
        };
        let a = spec.build(u(n), seed).take_schedule(8_000);
        let b = spec.build(u(n), seed).take_schedule(8_000);
        prop_assert_eq!(&a, &b);
        prop_assert!(s_differs_across_seeds(&spec, u(n), seed, 8_000, &a));
        prop_assert!(st_sched::validate::certify_all_live(&a, ProcSet::full(u(n))).is_ok(),
            "gray processes must stay live");
        // Thinning: with a uniform inner source and stretch ≥ 2, every gray
        // process steps less often than every non-gray process.
        let slowest_clear = ProcSet::full(u(n)).difference(gray).iter()
            .map(|p| a.occurrences(p)).min().unwrap();
        for g in gray.iter() {
            prop_assert!(a.occurrences(g) < slowest_clear,
                "gray {g} not thinned: {} vs clear minimum {}", a.occurrences(g), slowest_clear);
        }
    }

    /// BurstClog: deterministic per (spec, seed); burst runs of exactly the
    /// window length appear and the inner stream is preserved.
    #[test]
    fn burst_clog_contract(n in 2usize..=6, window in 4u64..32, lo in 10u64..50,
                           span in 1u64..80, seed in 0u64..500) {
        let clogger = st_core::ProcessId::new(0);
        let spec = GeneratorSpec::BurstClog {
            inner: Box::new(GeneratorSpec::seeded_random(2)),
            clogger, window, gap: (lo, lo + span), seed_offset: 11,
        };
        let a = spec.build(u(n), seed).take_schedule(5_000);
        let b = spec.build(u(n), seed).take_schedule(5_000);
        prop_assert_eq!(&a, &b);
        prop_assert!(s_differs_across_seeds(&spec, u(n), seed, 5_000, &a));
        // Some maximal clogger run reaches the window length.
        let mut best = 0u64;
        let mut run = 0u64;
        for p in a.iter() {
            if p == clogger { run += 1; best = best.max(run); } else { run = 0; }
        }
        prop_assert!(best >= window, "no full burst: max run {} < window {}", best, window);
    }

    /// CrashRecovery: the victim never resurrects inside its crash window,
    /// and rejoins after it (the schedule-membership certification the
    /// campaign checker replays).
    #[test]
    fn crash_recovery_contract(n in 2usize..=6, seed in 0u64..500,
                               crash in 0u64..1000, outage in 0u64..1500) {
        let victim = st_core::ProcessId::new(0);
        let rejoin = crash + outage;
        let spec = GeneratorSpec::crash_recovery(
            GeneratorSpec::seeded_random(0), victim, crash, rejoin,
        );
        let a = spec.build(u(n), seed).take_schedule(6_000);
        let b = spec.build(u(n), seed).take_schedule(6_000);
        prop_assert_eq!(&a, &b);
        prop_assert!(
            st_sched::validate::certify_absence_window(&a, victim, crash, rejoin).is_ok(),
            "victim resurrected inside its crash window"
        );
        prop_assert!(a.suffix(rejoin as usize).occurrences(victim) > 0,
            "victim must rejoin after the window");
        prop_assert_eq!(spec.faulty(u(n)), ProcSet::EMPTY);
    }
}

/// Distinct seeds produce distinct schedules (sanity for the seeded fault
/// decorators; trivially true for any seeded randomness over n ≥ 2).
fn s_differs_across_seeds(
    spec: &GeneratorSpec,
    universe: st_core::Universe,
    seed: u64,
    len: usize,
    baseline: &st_core::Schedule,
) -> bool {
    let other = spec
        .build(universe, seed.wrapping_add(1))
        .take_schedule(len);
    &other != baseline
}
