//! The timeout-policy grid axis, as plain data.
//!
//! Campaign grids (`st-campaign`) sweep the failure detector's Figure 2
//! line-17 timeout growth rule the same way they sweep generators and crash
//! plans: as a declarative axis value. The concrete grow-rule type lives in
//! `st-fd` (`st_fd::TimeoutPolicy`), which this crate does not depend on —
//! so the axis value is this mirror enum, and the campaign engine converts
//! it when it materializes a scenario's workload (exactly like
//! [`crate::GeneratorSpec`] mirrors the stateful generators).

/// A failure-detector timeout growth rule, as grid-axis data.
///
/// Mirrors `st_fd::TimeoutPolicy` variant for variant; `st-campaign` owns
/// the conversion.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum TimeoutPolicySpec {
    /// The paper's rule: `timeout[A] ← timeout[A] + 1`.
    #[default]
    Increment,
    /// The ablation rule: `timeout[A] ← 2 · timeout[A]`.
    Double,
}

impl TimeoutPolicySpec {
    /// Short name for scenario labels and tables.
    pub fn name(self) -> &'static str {
        match self {
            TimeoutPolicySpec::Increment => "Increment",
            TimeoutPolicySpec::Double => "Double",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_default() {
        assert_eq!(TimeoutPolicySpec::default(), TimeoutPolicySpec::Increment);
        assert_eq!(TimeoutPolicySpec::Increment.name(), "Increment");
        assert_eq!(TimeoutPolicySpec::Double.name(), "Double");
    }
}
