//! Crash plans: which processes crash, and when.
//!
//! In the model a crash is not an event — a faulty process simply has
//! finitely many steps in the schedule. A [`CrashPlan`] makes this
//! constructive: the [`CrashAfter`] decorator suppresses all steps of a
//! process from its crash point on, so the wrapped generator's output is a
//! schedule in which the process is faulty.

use std::collections::BTreeMap;

use st_core::{ProcSet, ProcessId, StepSource};

/// When each faulty process takes its last step.
///
/// # Examples
///
/// ```
/// use st_core::ProcessId;
/// use st_sched::CrashPlan;
///
/// let plan = CrashPlan::new().crash(ProcessId::new(2), 100);
/// assert!(plan.is_crashed(ProcessId::new(2), 150));
/// assert!(!plan.is_crashed(ProcessId::new(2), 50));
/// assert_eq!(plan.faulty().len(), 1);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CrashPlan {
    crash_at: BTreeMap<ProcessId, u64>,
}

impl CrashPlan {
    /// An empty plan (no crashes).
    pub fn new() -> Self {
        CrashPlan::default()
    }

    /// A plan crashing every member of `set` at global step `step`.
    pub fn all_at(set: ProcSet, step: u64) -> Self {
        let mut plan = CrashPlan::new();
        for p in set.iter() {
            plan = plan.crash(p, step);
        }
        plan
    }

    /// Adds a crash of `p` at global step `step` (builder style).
    pub fn crash(mut self, p: ProcessId, step: u64) -> Self {
        self.crash_at.insert(p, step);
        self
    }

    /// The set of processes that ever crash.
    pub fn faulty(&self) -> ProcSet {
        self.crash_at.keys().copied().collect()
    }

    /// Whether `p` is crashed as of global step `step`.
    pub fn is_crashed(&self, p: ProcessId, step: u64) -> bool {
        self.crash_at.get(&p).is_some_and(|&s| step >= s)
    }

    /// Returns `true` if no process ever crashes.
    pub fn is_empty(&self) -> bool {
        self.crash_at.is_empty()
    }

    /// The `(process, crash step)` entries, in ascending process order —
    /// the plan's canonical enumeration (used by the campaign store codec).
    pub fn entries(&self) -> impl Iterator<Item = (ProcessId, u64)> + '_ {
        self.crash_at.iter().map(|(&p, &s)| (p, s))
    }
}

/// Decorator suppressing the steps of crashed processes.
///
/// The global step clock advances only on *emitted* steps, so a crash at
/// step `s` means "the process takes no step at schedule position ≥ s".
/// If every process the inner source emits is crashed, the source ends
/// (after a bounded number of skip attempts per step).
pub struct CrashAfter<S> {
    inner: S,
    plan: CrashPlan,
    emitted: u64,
    /// Abort the scan after this many consecutive suppressed steps, to keep
    /// termination when the inner source only schedules crashed processes.
    max_skips: u64,
}

impl<S: StepSource> CrashAfter<S> {
    /// Wraps `inner` with the plan.
    pub fn new(inner: S, plan: CrashPlan) -> Self {
        CrashAfter {
            inner,
            plan,
            emitted: 0,
            max_skips: 1_000_000,
        }
    }

    /// The plan's faulty set (convenience for outcome checking).
    pub fn faulty(&self) -> ProcSet {
        self.plan.faulty()
    }
}

impl<S: StepSource> StepSource for CrashAfter<S> {
    fn next_step(&mut self) -> Option<ProcessId> {
        for _ in 0..self.max_skips {
            let p = self.inner.next_step()?;
            if self.plan.is_crashed(p, self.emitted) {
                continue;
            }
            self.emitted += 1;
            return Some(p);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_core::{Schedule, ScheduleCursor};

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn plan_queries() {
        let plan = CrashPlan::new().crash(p(0), 5).crash(p(3), 0);
        assert_eq!(plan.faulty(), ProcSet::from_indices([0, 3]));
        assert!(plan.is_crashed(p(3), 0));
        assert!(!plan.is_crashed(p(0), 4));
        assert!(plan.is_crashed(p(0), 5));
        assert!(!plan.is_crashed(p(1), 100));
        assert!(!plan.is_empty());
        assert!(CrashPlan::new().is_empty());
    }

    #[test]
    fn all_at_constructor() {
        let plan = CrashPlan::all_at(ProcSet::from_indices([1, 2]), 7);
        assert!(plan.is_crashed(p(1), 7) && plan.is_crashed(p(2), 7));
        assert!(!plan.is_crashed(p(1), 6));
    }

    #[test]
    fn decorator_suppresses_after_crash() {
        let inner = ScheduleCursor::new(Schedule::from_indices([0, 1, 0, 1, 0, 1, 0, 1]));
        let mut src = CrashAfter::new(inner, CrashPlan::new().crash(p(1), 3));
        // Emitted positions: 0:p0 1:p1 2:p0 — p1's next would be at position 3
        // → suppressed; remaining p0 steps flow through.
        let got = src.take_schedule(100);
        assert_eq!(got, Schedule::from_indices([0, 1, 0, 0, 0]));
    }

    #[test]
    fn crash_from_start_silences_entirely() {
        let inner = ScheduleCursor::new(Schedule::from_indices([2, 2, 0, 2]));
        let mut src = CrashAfter::new(inner, CrashPlan::new().crash(p(2), 0));
        assert_eq!(src.take_schedule(100), Schedule::from_indices([0]));
    }

    #[test]
    fn all_crashed_terminates() {
        struct Only(usize);
        impl StepSource for Only {
            fn next_step(&mut self) -> Option<ProcessId> {
                Some(ProcessId::new(self.0))
            }
        }
        let mut src = CrashAfter::new(Only(0), CrashPlan::new().crash(p(0), 0));
        assert_eq!(src.next_step(), None);
    }
}
