//! Schedule generators with ground-truth set-timeliness properties.
//!
//! Experiments need schedules whose membership in `S^i_{j,n}` is known *by
//! construction*, not just observed. This crate provides:
//!
//! - **Basic sources** — [`RoundRobin`], [`SeededRandom`] (deterministic per
//!   seed).
//! - **The Figure 1 family** — [`Figure1`] and [`GeneralizedFigure1`]: a set
//!   that is timely while none of its members is.
//! - **Conforming generators** — [`SetTimely`] enforces a chosen timely pair
//!   over any adversarial filler; [`Eventually`] prepends chaotic prefixes
//!   (absorbed by Definition 1's bound).
//! - **Proof-derived adversaries** — [`RotatingStarvation`] (Theorem 26
//!   part 2: only sets of size `> k` are timely) and [`FictitiousCrash`]
//!   (Theorem 27 case 2b: in `S^i_{j,n}` yet outside `S^k_{t+1,n}`).
//! - **Crash plans** — [`CrashPlan`] / [`CrashAfter`] model faulty processes
//!   as processes with finitely many steps.
//! - **Fault injection** — [`FlappingTimely`], [`GrayFailure`],
//!   [`BurstClog`], and [`CrashRecovery`] model dynamic synchrony: flapping
//!   timeliness, slow-but-live processes, schedule monopolization, and
//!   crash-with-rejoin, all deterministic per seed.
//! - **Declarative specs** — [`GeneratorSpec`] describes any of the above as
//!   plain data and builds it on demand (`Box<dyn StepSource>`); scenario
//!   campaigns (`st-campaign`) grid over specs, not generators.
//! - **Spec mutation** — [`SpecMutator`] generates arbitrary valid spec
//!   trees and perturbs them as plain data (the genetic half of
//!   `st-campaign::fuzz`), driven by the dependency-free [`SpecRng`].
//! - **Certification** — [`validate`] cross-checks every generator claim
//!   against the `st-core` analyzer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alternating;
mod basic;
mod crashes;
mod cycle;
mod faults;
mod fictitious;
mod figure1;
pub mod mutate;
pub mod policy;
mod set_timely;
pub mod spec;
mod starvation;
pub mod validate;

pub use alternating::AlternatingRotation;
pub use basic::{BurstyRotation, RoundRobin, SeededRandom};
pub use crashes::{CrashAfter, CrashPlan};
pub use cycle::Cycle;
pub use faults::{BurstClog, CrashRecovery, FlappingTimely, GrayFailure, PhaseSegment};
pub use fictitious::FictitiousCrash;
pub use figure1::{Figure1, GeneralizedFigure1};
pub use mutate::{SpecMutator, SpecRng};
pub use policy::TimeoutPolicySpec;
pub use set_timely::{Eventually, SetTimely};
pub use spec::GeneratorSpec;
pub use starvation::RotatingStarvation;
