//! Basic generators: round-robin and seeded random.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use st_core::{ProcSet, ProcessId, StepSource, Universe};

/// Cyclic round-robin over a set of processes (the whole universe by
/// default) — the maximally synchronous schedule: every singleton is timely
/// with respect to everything with bound `|set|`.
///
/// # Examples
///
/// ```
/// use st_core::{Universe, StepSource, Schedule};
/// use st_sched::RoundRobin;
///
/// let mut rr = RoundRobin::new(Universe::new(3).unwrap());
/// assert_eq!(rr.take_schedule(6), Schedule::from_indices([0, 1, 2, 0, 1, 2]));
/// ```
#[derive(Clone, Debug)]
pub struct RoundRobin {
    members: Vec<ProcessId>,
    pos: usize,
}

impl RoundRobin {
    /// Round-robin over the full universe.
    pub fn new(universe: Universe) -> Self {
        RoundRobin {
            members: universe.processes().collect(),
            pos: 0,
        }
    }

    /// Round-robin over an explicit non-empty set.
    ///
    /// # Panics
    ///
    /// Panics if `set` is empty.
    pub fn over(set: ProcSet) -> Self {
        assert!(!set.is_empty(), "round robin needs at least one process");
        RoundRobin {
            members: set.to_vec(),
            pos: 0,
        }
    }
}

impl StepSource for RoundRobin {
    fn next_step(&mut self) -> Option<ProcessId> {
        let p = self.members[self.pos];
        self.pos = (self.pos + 1) % self.members.len();
        Some(p)
    }
}

/// Round-robin with a dwell: each process takes `burst` consecutive steps
/// per rotation turn.
///
/// Every singleton is timely with respect to everything with bound
/// `n · burst`, like [`RoundRobin`] — but a process that needs an O(burst)
/// scan to make a protocol-level move (the lean large-n detectors scan all
/// `n` heartbeats, so one iteration is ~n² steps) completes it uncontended
/// within one turn instead of restarting its timeout reasoning on every
/// interleaved step. This is the n-scaling experiment's conforming
/// schedule; as a spec it serializes in O(1) where a materialized
/// [`Cycle`](crate::Cycle) of the same shape is n · burst entries.
///
/// # Examples
///
/// ```
/// use st_core::{Universe, StepSource, Schedule};
/// use st_sched::BurstyRotation;
///
/// let mut b = BurstyRotation::new(Universe::new(3).unwrap(), 2);
/// assert_eq!(b.take_schedule(7), Schedule::from_indices([0, 0, 1, 1, 2, 2, 0]));
/// ```
#[derive(Clone, Debug)]
pub struct BurstyRotation {
    members: Vec<ProcessId>,
    pos: usize,
    burst: u64,
    left: u64,
}

impl BurstyRotation {
    /// Bursty rotation over the full universe.
    ///
    /// # Panics
    ///
    /// Panics if `burst == 0`.
    pub fn new(universe: Universe, burst: u64) -> Self {
        assert!(burst >= 1, "burst length must be positive");
        BurstyRotation {
            members: universe.processes().collect(),
            pos: 0,
            burst,
            left: burst,
        }
    }
}

impl StepSource for BurstyRotation {
    fn next_step(&mut self) -> Option<ProcessId> {
        let p = self.members[self.pos];
        self.left -= 1;
        if self.left == 0 {
            self.pos = (self.pos + 1) % self.members.len();
            self.left = self.burst;
        }
        Some(p)
    }
}

/// Uniform (or weighted) random scheduling with a deterministic seed.
///
/// Random schedules are "average-case asynchronous": with probability one
/// every process is correct and every pair of sets is timely for *some*
/// bound, but the bound is unbounded in expectation across seeds — useful as
/// filler inside [`SetTimely`](crate::SetTimely) and as a baseline workload.
#[derive(Clone, Debug)]
pub struct SeededRandom {
    members: Vec<ProcessId>,
    weights: Vec<u32>,
    total_weight: u64,
    rng: StdRng,
}

impl SeededRandom {
    /// Uniform over the universe.
    pub fn new(universe: Universe, seed: u64) -> Self {
        let members: Vec<ProcessId> = universe.processes().collect();
        let weights = vec![1u32; members.len()];
        let total_weight = members.len() as u64;
        SeededRandom {
            members,
            weights,
            total_weight,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Uniform over an explicit non-empty set.
    ///
    /// # Panics
    ///
    /// Panics if `set` is empty.
    pub fn over(set: ProcSet, seed: u64) -> Self {
        assert!(!set.is_empty(), "random source needs at least one process");
        let members = set.to_vec();
        let weights = vec![1u32; members.len()];
        let total_weight = members.len() as u64;
        SeededRandom {
            members,
            weights,
            total_weight,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Sets integer weights per member (same order as the member list);
    /// a weight of 0 silences a process.
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the member count or all weights are
    /// zero.
    pub fn with_weights(mut self, weights: Vec<u32>) -> Self {
        assert_eq!(weights.len(), self.members.len(), "one weight per member");
        let total: u64 = weights.iter().map(|&w| w as u64).sum();
        assert!(total > 0, "at least one weight must be positive");
        self.weights = weights;
        self.total_weight = total;
        self
    }
}

impl StepSource for SeededRandom {
    fn next_step(&mut self) -> Option<ProcessId> {
        let mut ticket = self.rng.random_range(0..self.total_weight);
        for (i, &w) in self.weights.iter().enumerate() {
            let w = w as u64;
            if ticket < w {
                return Some(self.members[i]);
            }
            ticket -= w;
        }
        unreachable!("ticket below total weight always lands")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_core::Schedule;

    fn u(n: usize) -> Universe {
        Universe::new(n).unwrap()
    }

    #[test]
    fn round_robin_cycles() {
        let mut rr = RoundRobin::over(ProcSet::from_indices([1, 3]));
        assert_eq!(rr.take_schedule(5), Schedule::from_indices([1, 3, 1, 3, 1]));
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn round_robin_empty_panics() {
        let _ = RoundRobin::over(ProcSet::EMPTY);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let a = SeededRandom::new(u(4), 42).take_schedule(100);
        let b = SeededRandom::new(u(4), 42).take_schedule(100);
        let c = SeededRandom::new(u(4), 43).take_schedule(100);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn random_covers_all_processes() {
        let s = SeededRandom::new(u(5), 7).take_schedule(1000);
        assert_eq!(s.participants(), ProcSet::full(u(5)));
    }

    #[test]
    fn zero_weight_silences() {
        let src = SeededRandom::new(u(3), 1).with_weights(vec![1, 0, 1]);
        let mut src = src;
        let s = src.take_schedule(500);
        assert_eq!(s.occurrences(ProcessId::new(1)), 0);
        assert!(s.occurrences(ProcessId::new(0)) > 0);
        assert!(s.occurrences(ProcessId::new(2)) > 0);
    }

    #[test]
    fn heavy_weight_dominates() {
        let mut src = SeededRandom::new(u(2), 9).with_weights(vec![99, 1]);
        let s = src.take_schedule(2000);
        assert!(s.occurrences(ProcessId::new(0)) > s.occurrences(ProcessId::new(1)) * 20);
    }

    #[test]
    #[should_panic(expected = "one weight per member")]
    fn weight_length_mismatch_panics() {
        let _ = SeededRandom::new(u(3), 1).with_weights(vec![1, 2]);
    }
}
