//! Declarative generator specifications: every generator of this crate as
//! plain data.
//!
//! A [`GeneratorSpec`] describes a schedule generator without constructing
//! it — the construction happens in [`GeneratorSpec::build`], which closes
//! over a [`Universe`] and a *scenario seed* and returns a
//! `Box<dyn StepSource>`. That inversion is what makes scenario *grids*
//! possible: a campaign can hold a heterogeneous list of specs (round-robin
//! next to Figure 1 next to a crash-decorated `SetTimely`), clone them
//! across seed and crash axes, ship them to worker threads (`Spec` is
//! `Send + Sync`), and only materialize the stateful generator inside the
//! worker that runs the scenario.
//!
//! Seeding: specs never hold an absolute seed, only a `seed_offset`. At
//! build time the offset is added (wrapping) to the scenario seed, so one
//! spec reused across a seed axis produces the distinct-but-deterministic
//! filler streams the experiments use (`cfg.seed`, `cfg.seed + 1`, …).
//!
//! Crashes: [`GeneratorSpec::crashed`] applies a [`CrashPlan`] the way the
//! experiments do by hand — a [`SetTimely`] spec gets the plan both as its
//! injection filter and as a [`CrashAfter`] wrapper around its filler; any
//! other spec is wrapped in [`CrashAfter`] directly. [`GeneratorSpec::faulty`]
//! reports every process the spec silences, so outcome checking can derive
//! the correct set without re-deriving the plan.

use st_core::{ProcSet, ProcessId, Schedule, ScheduleCursor, StepSource, SystemSpec, Universe};

use crate::alternating::AlternatingRotation;
use crate::basic::{BurstyRotation, RoundRobin, SeededRandom};
use crate::crashes::{CrashAfter, CrashPlan};
use crate::cycle::Cycle;
use crate::faults::{BurstClog, CrashRecovery, FlappingTimely, GrayFailure};
use crate::fictitious::FictitiousCrash;
use crate::figure1::{Figure1, GeneralizedFigure1};
use crate::set_timely::{Eventually, SetTimely};
use crate::starvation::RotatingStarvation;

/// A schedule generator as declarative data. See the module docs for the
/// build/seed/crash conventions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GeneratorSpec {
    /// [`RoundRobin`] over the universe (`over: None`) or an explicit set.
    RoundRobin {
        /// Explicit member set; `None` means the whole universe.
        over: Option<ProcSet>,
    },
    /// [`BurstyRotation`]: round-robin over the whole universe where each
    /// process takes `burst` consecutive steps per turn. The schedule shape
    /// large-n lean workloads need — a dwell of a full O(n²) detector
    /// iteration per turn keeps the fleet's convergence cost linear in the
    /// rotation instead of interleaving scans step by step — and, unlike a
    /// materialized [`Cycle`], it serializes in O(1).
    Bursty {
        /// Consecutive steps each process takes per rotation turn.
        burst: u64,
    },
    /// [`SeededRandom`] with seed `scenario_seed + seed_offset`.
    SeededRandom {
        /// Explicit member set; `None` means the whole universe.
        over: Option<ProcSet>,
        /// Added (wrapping) to the scenario seed at build time.
        seed_offset: u64,
        /// Optional per-member weights (same order as the member list).
        weights: Option<Vec<u32>>,
    },
    /// [`SetTimely`]: `p` timely wrt `q` with `bound` over the filler spec.
    SetTimely {
        /// The enforced timely set.
        p: ProcSet,
        /// The observed set.
        q: ProcSet,
        /// The enforced bound.
        bound: usize,
        /// Adversarial filler, itself a spec.
        filler: Box<GeneratorSpec>,
        /// Crash plan consulted when injecting `P`-steps (empty = none).
        crashes: CrashPlan,
    },
    /// [`Eventually`]: a finite prefix spec, then the body spec.
    Eventually {
        /// The chaotic prefix.
        prefix: Box<GeneratorSpec>,
        /// Steps taken from the prefix before switching.
        prefix_len: u64,
        /// The eventual body.
        body: Box<GeneratorSpec>,
    },
    /// The literal [`Figure1`] schedule.
    Figure1 {
        /// First flapping process.
        p1: ProcessId,
        /// Second flapping process.
        p2: ProcessId,
        /// The observed process.
        q: ProcessId,
    },
    /// [`GeneralizedFigure1`]: `p` collectively timely wrt `q`.
    GeneralizedFigure1 {
        /// The collectively timely set.
        p: ProcSet,
        /// The observed set.
        q: ProcSet,
    },
    /// [`RotatingStarvation`] of every size-`k` subset.
    RotatingStarvation {
        /// The starved subset size.
        k: usize,
        /// Base epoch length.
        base: u64,
    },
    /// [`FictitiousCrash`] for system `S^i_{j,n}` against task `(t, k)`
    /// (`n` comes from the build universe).
    FictitiousCrash {
        /// System parameter `i`.
        i: usize,
        /// System parameter `j`.
        j: usize,
        /// Task resilience `t`.
        t: usize,
        /// Task agreement degree `k`.
        k: usize,
        /// Base epoch length.
        base: u64,
    },
    /// [`Cycle`]: infinite repetition of a finite schedule.
    Cycle {
        /// The repeated period.
        period: Schedule,
    },
    /// [`AlternatingRotation`] over a group partition.
    AlternatingRotation {
        /// The disjoint groups.
        groups: Vec<ProcSet>,
        /// Base representative-run length.
        base: u64,
    },
    /// [`CrashAfter`]: the inner spec with a crash plan applied.
    CrashAfter {
        /// The wrapped spec.
        inner: Box<GeneratorSpec>,
        /// When each faulty process takes its last step.
        plan: CrashPlan,
    },
    /// [`FlappingTimely`]: `p` timely wrt `q` only during seeded timely
    /// dwells, alternating with unchecked untimely dwells.
    Flapping {
        /// The intermittently enforced timely set.
        p: ProcSet,
        /// The observed set.
        q: ProcSet,
        /// The bound enforced during timely dwells.
        bound: usize,
        /// Adversarial filler, itself a spec.
        filler: Box<GeneratorSpec>,
        /// Inclusive range of timely-phase lengths (emitted steps).
        timely_dwell: (u64, u64),
        /// Inclusive range of untimely-phase lengths (emitted steps).
        untimely_dwell: (u64, u64),
        /// Added (wrapping) to the scenario seed for the dwell RNG.
        seed_offset: u64,
    },
    /// [`GrayFailure`]: the gray processes' steps thinned to one in
    /// `stretch`, with seeded phases — slow but live.
    GrayFailure {
        /// The wrapped spec.
        inner: Box<GeneratorSpec>,
        /// The slow-but-live processes.
        gray: ProcSet,
        /// Dilation factor (1 = identity).
        stretch: u64,
        /// Added (wrapping) to the scenario seed for the phase RNG.
        seed_offset: u64,
    },
    /// [`BurstClog`]: one process monopolizes the schedule for fixed
    /// windows separated by seeded gaps.
    BurstClog {
        /// The wrapped spec.
        inner: Box<GeneratorSpec>,
        /// The monopolizing process.
        clogger: ProcessId,
        /// Burst length in emitted steps.
        window: u64,
        /// Inclusive range of gap lengths between bursts.
        gap: (u64, u64),
        /// Added (wrapping) to the scenario seed for the gap RNG.
        seed_offset: u64,
    },
    /// [`CrashRecovery`]: the victim silent at emitted positions
    /// `[crash, rejoin)`, then back — and therefore *not* faulty.
    CrashRecovery {
        /// The wrapped spec.
        inner: Box<GeneratorSpec>,
        /// The process that crashes and rejoins.
        victim: ProcessId,
        /// First silent position.
        crash: u64,
        /// First position the victim may step at again.
        rejoin: u64,
    },
    /// A [`ScheduleCursor`] replay of a fixed finite schedule, carrying the
    /// spec whose run produced it. The carried spec is never built — it
    /// exists so the replay inherits the original's constructive claims
    /// (root guarantee, crash windows, faulty set), which is what lets the
    /// shrinker and `stlab --replay` re-arm the same invariants on a
    /// truncated schedule. The source ends after the last step.
    Replay {
        /// The spec whose constructive claims this replay inherits.
        of: Box<GeneratorSpec>,
        /// The replayed schedule.
        schedule: Schedule,
    },
}

impl GeneratorSpec {
    /// Round-robin over the full universe.
    pub fn round_robin() -> Self {
        GeneratorSpec::RoundRobin { over: None }
    }

    /// Bursty rotation over the full universe: `burst` consecutive steps
    /// per process per turn.
    pub fn bursty(burst: u64) -> Self {
        GeneratorSpec::Bursty { burst }
    }

    /// Uniform seeded-random over the full universe, at the given offset
    /// from the scenario seed.
    pub fn seeded_random(seed_offset: u64) -> Self {
        GeneratorSpec::SeededRandom {
            over: None,
            seed_offset,
            weights: None,
        }
    }

    /// `SetTimely` with the given guarantee over a filler spec.
    pub fn set_timely(p: ProcSet, q: ProcSet, bound: usize, filler: GeneratorSpec) -> Self {
        GeneratorSpec::SetTimely {
            p,
            q,
            bound,
            filler: Box::new(filler),
            crashes: CrashPlan::new(),
        }
    }

    /// `FlappingTimely` with the given intermittent guarantee over a filler
    /// spec (dwell RNG at offset 0 from the scenario seed).
    pub fn flapping(
        p: ProcSet,
        q: ProcSet,
        bound: usize,
        filler: GeneratorSpec,
        timely_dwell: (u64, u64),
        untimely_dwell: (u64, u64),
    ) -> Self {
        GeneratorSpec::Flapping {
            p,
            q,
            bound,
            filler: Box::new(filler),
            timely_dwell,
            untimely_dwell,
            seed_offset: 0,
        }
    }

    /// `GrayFailure` over an inner spec (phase RNG at offset 0).
    pub fn gray_failure(inner: GeneratorSpec, gray: ProcSet, stretch: u64) -> Self {
        GeneratorSpec::GrayFailure {
            inner: Box::new(inner),
            gray,
            stretch,
            seed_offset: 0,
        }
    }

    /// `BurstClog` over an inner spec (gap RNG at offset 0).
    pub fn burst_clog(
        inner: GeneratorSpec,
        clogger: ProcessId,
        window: u64,
        gap: (u64, u64),
    ) -> Self {
        GeneratorSpec::BurstClog {
            inner: Box::new(inner),
            clogger,
            window,
            gap,
            seed_offset: 0,
        }
    }

    /// `CrashRecovery` over an inner spec.
    pub fn crash_recovery(
        inner: GeneratorSpec,
        victim: ProcessId,
        crash: u64,
        rejoin: u64,
    ) -> Self {
        GeneratorSpec::CrashRecovery {
            inner: Box::new(inner),
            victim,
            crash,
            rejoin,
        }
    }

    /// A replay of `schedule` inheriting the constructive claims of `of`
    /// (the spec whose run produced the schedule). Replaying a replay
    /// reuses the original carried spec instead of nesting.
    pub fn replay(of: GeneratorSpec, schedule: Schedule) -> Self {
        let of = match of {
            GeneratorSpec::Replay { of, .. } => of,
            other => Box::new(other),
        };
        GeneratorSpec::Replay { of, schedule }
    }

    /// Applies a crash plan the way the experiments do by hand: a
    /// [`SetTimely`] spec keeps injecting only live `P`-members **and** has
    /// its filler crash-filtered; every other spec is wrapped in
    /// [`CrashAfter`]. An empty plan returns the spec unchanged.
    pub fn crashed(self, plan: CrashPlan) -> Self {
        if plan.is_empty() {
            return self;
        }
        match self {
            GeneratorSpec::SetTimely {
                p,
                q,
                bound,
                filler,
                crashes,
            } => {
                debug_assert!(crashes.is_empty(), "crash plan already applied");
                GeneratorSpec::SetTimely {
                    p,
                    q,
                    bound,
                    filler: Box::new(GeneratorSpec::CrashAfter {
                        inner: filler,
                        plan: plan.clone(),
                    }),
                    crashes: plan,
                }
            }
            other => GeneratorSpec::CrashAfter {
                inner: Box::new(other),
                plan,
            },
        }
    }

    /// Every process this spec silences — crash-plan victims plus the
    /// fictitious pre-crashed set. The scenario's correct set is the
    /// complement.
    pub fn faulty(&self, universe: Universe) -> ProcSet {
        match self {
            GeneratorSpec::RoundRobin { .. }
            | GeneratorSpec::Bursty { .. }
            | GeneratorSpec::SeededRandom { .. }
            | GeneratorSpec::Figure1 { .. }
            | GeneratorSpec::GeneralizedFigure1 { .. }
            | GeneratorSpec::RotatingStarvation { .. }
            | GeneratorSpec::Cycle { .. }
            | GeneratorSpec::AlternatingRotation { .. } => ProcSet::EMPTY,
            GeneratorSpec::SetTimely {
                filler, crashes, ..
            } => crashes.faulty().union(filler.faulty(universe)),
            GeneratorSpec::Eventually { prefix, body, .. } => {
                // A prefix crash only holds for finitely many steps; the
                // body decides who is faulty in the limit.
                let _ = prefix;
                body.faulty(universe)
            }
            GeneratorSpec::FictitiousCrash { i, j, .. } => {
                // The last j − i processes never step (see `FictitiousCrash`).
                let n = universe.n();
                ((n - (j - i))..n).map(ProcessId::new).collect()
            }
            GeneratorSpec::CrashAfter { inner, plan } => {
                plan.faulty().union(inner.faulty(universe))
            }
            // Fault decorators silence nobody forever: flapping only relaxes
            // enforcement, gray processes stay live, the clogger adds steps,
            // and a crash-recovery victim rejoins.
            GeneratorSpec::Flapping { filler, .. } => filler.faulty(universe),
            GeneratorSpec::GrayFailure { inner, .. }
            | GeneratorSpec::BurstClog { inner, .. }
            | GeneratorSpec::CrashRecovery { inner, .. } => inner.faulty(universe),
            // A replay silences exactly what the replayed spec silenced.
            GeneratorSpec::Replay { of, .. } => of.faulty(universe),
        }
    }

    /// Short family name for tables and labels.
    pub fn family(&self) -> &'static str {
        match self {
            GeneratorSpec::RoundRobin { .. } => "RoundRobin",
            GeneratorSpec::Bursty { .. } => "Bursty",
            GeneratorSpec::SeededRandom { .. } => "SeededRandom",
            GeneratorSpec::SetTimely { .. } => "SetTimely",
            GeneratorSpec::Eventually { .. } => "Eventually",
            GeneratorSpec::Figure1 { .. } => "Figure1",
            GeneratorSpec::GeneralizedFigure1 { .. } => "GeneralizedFigure1",
            GeneratorSpec::RotatingStarvation { .. } => "RotatingStarvation",
            GeneratorSpec::FictitiousCrash { .. } => "FictitiousCrash",
            GeneratorSpec::Cycle { .. } => "Cycle",
            GeneratorSpec::AlternatingRotation { .. } => "AlternatingRotation",
            GeneratorSpec::CrashAfter { .. } => "CrashAfter",
            GeneratorSpec::Flapping { .. } => "Flapping",
            GeneratorSpec::GrayFailure { .. } => "GrayFailure",
            GeneratorSpec::BurstClog { .. } => "BurstClog",
            GeneratorSpec::CrashRecovery { .. } => "CrashRecovery",
            GeneratorSpec::Replay { .. } => "Replay",
        }
    }

    /// Materializes the generator for `universe`, offsetting every embedded
    /// seed by `seed` (wrapping).
    ///
    /// # Panics
    ///
    /// Panics when the described generator's own constructor would: empty
    /// sets, out-of-range parameters, a [`FictitiousCrash`] spec whose
    /// parameters are solvable, etc. Specs are built eagerly at campaign
    /// construction in tests, so these fire where the grid is defined, not
    /// inside a worker.
    pub fn build(&self, universe: Universe, seed: u64) -> Box<dyn StepSource> {
        match self {
            GeneratorSpec::RoundRobin { over } => match over {
                Some(set) => Box::new(RoundRobin::over(*set)),
                None => Box::new(RoundRobin::new(universe)),
            },
            GeneratorSpec::Bursty { burst } => Box::new(BurstyRotation::new(universe, *burst)),
            GeneratorSpec::SeededRandom {
                over,
                seed_offset,
                weights,
            } => {
                let s = seed.wrapping_add(*seed_offset);
                let src = match over {
                    Some(set) => SeededRandom::over(*set, s),
                    None => SeededRandom::new(universe, s),
                };
                match weights {
                    Some(w) => Box::new(src.with_weights(w.clone())),
                    None => Box::new(src),
                }
            }
            GeneratorSpec::SetTimely {
                p,
                q,
                bound,
                filler,
                crashes,
            } => Box::new(
                SetTimely::new(*p, *q, *bound, filler.build(universe, seed))
                    .with_crashes(crashes.clone()),
            ),
            GeneratorSpec::Eventually {
                prefix,
                prefix_len,
                body,
            } => Box::new(Eventually::new(
                prefix.build(universe, seed),
                *prefix_len,
                body.build(universe, seed),
            )),
            GeneratorSpec::Figure1 { p1, p2, q } => Box::new(Figure1::new(*p1, *p2, *q)),
            GeneratorSpec::GeneralizedFigure1 { p, q } => Box::new(GeneralizedFigure1::new(*p, *q)),
            GeneratorSpec::RotatingStarvation { k, base } => {
                Box::new(RotatingStarvation::with_base(universe, *k, *base))
            }
            GeneratorSpec::FictitiousCrash { i, j, t, k, base } => {
                let spec = SystemSpec::new(*i, *j, universe.n())
                    .expect("FictitiousCrash spec parameters in range");
                Box::new(FictitiousCrash::with_base(spec, *t, *k, *base))
            }
            GeneratorSpec::Cycle { period } => Box::new(Cycle::new(period.clone())),
            GeneratorSpec::AlternatingRotation { groups, base } => {
                Box::new(AlternatingRotation::with_base(groups, *base))
            }
            GeneratorSpec::CrashAfter { inner, plan } => {
                Box::new(CrashAfter::new(inner.build(universe, seed), plan.clone()))
            }
            GeneratorSpec::Flapping {
                p,
                q,
                bound,
                filler,
                timely_dwell,
                untimely_dwell,
                seed_offset,
            } => Box::new(FlappingTimely::new(
                *p,
                *q,
                *bound,
                filler.build(universe, seed),
                *timely_dwell,
                *untimely_dwell,
                seed.wrapping_add(*seed_offset),
            )),
            GeneratorSpec::GrayFailure {
                inner,
                gray,
                stretch,
                seed_offset,
            } => Box::new(GrayFailure::new(
                inner.build(universe, seed),
                *gray,
                *stretch,
                seed.wrapping_add(*seed_offset),
            )),
            GeneratorSpec::BurstClog {
                inner,
                clogger,
                window,
                gap,
                seed_offset,
            } => Box::new(BurstClog::new(
                inner.build(universe, seed),
                *clogger,
                *window,
                *gap,
                seed.wrapping_add(*seed_offset),
            )),
            GeneratorSpec::CrashRecovery {
                inner,
                victim,
                crash,
                rejoin,
            } => Box::new(CrashRecovery::new(
                inner.build(universe, seed),
                *victim,
                *crash,
                *rejoin,
            )),
            GeneratorSpec::Replay { schedule, .. } => {
                Box::new(ScheduleCursor::new(schedule.clone()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_core::timeliness::empirical_bound;

    fn u(n: usize) -> Universe {
        Universe::new(n).unwrap()
    }

    fn set(ix: &[usize]) -> ProcSet {
        ProcSet::from_indices(ix.iter().copied())
    }

    /// Every spec builds exactly the generator its hand-rolled twin builds.
    #[test]
    fn specs_match_hand_built_generators() {
        let n = 5;
        let len = 4_000;
        let cases: Vec<(GeneratorSpec, Schedule)> = vec![
            (
                GeneratorSpec::round_robin(),
                RoundRobin::new(u(n)).take_schedule(len),
            ),
            (
                GeneratorSpec::RoundRobin {
                    over: Some(set(&[1, 3])),
                },
                RoundRobin::over(set(&[1, 3])).take_schedule(len),
            ),
            (
                GeneratorSpec::seeded_random(3),
                SeededRandom::new(u(n), 42 + 3).take_schedule(len),
            ),
            (
                GeneratorSpec::SeededRandom {
                    over: Some(set(&[0, 2, 4])),
                    seed_offset: 0,
                    weights: Some(vec![1, 0, 2]),
                },
                SeededRandom::over(set(&[0, 2, 4]), 42)
                    .with_weights(vec![1, 0, 2])
                    .take_schedule(len),
            ),
            (
                GeneratorSpec::set_timely(
                    set(&[0]),
                    set(&[1, 2]),
                    3,
                    GeneratorSpec::seeded_random(0),
                ),
                SetTimely::new(set(&[0]), set(&[1, 2]), 3, SeededRandom::new(u(n), 42))
                    .take_schedule(len),
            ),
            (
                GeneratorSpec::Eventually {
                    prefix: Box::new(GeneratorSpec::RoundRobin {
                        over: Some(set(&[1])),
                    }),
                    prefix_len: 100,
                    body: Box::new(GeneratorSpec::round_robin()),
                },
                Eventually::new(RoundRobin::over(set(&[1])), 100, RoundRobin::new(u(n)))
                    .take_schedule(len),
            ),
            (
                GeneratorSpec::Figure1 {
                    p1: ProcessId::new(0),
                    p2: ProcessId::new(1),
                    q: ProcessId::new(2),
                },
                Figure1::new(ProcessId::new(0), ProcessId::new(1), ProcessId::new(2))
                    .take_schedule(len),
            ),
            (
                GeneratorSpec::GeneralizedFigure1 {
                    p: set(&[0, 1]),
                    q: set(&[2, 3]),
                },
                GeneralizedFigure1::new(set(&[0, 1]), set(&[2, 3])).take_schedule(len),
            ),
            (
                GeneratorSpec::RotatingStarvation { k: 2, base: 8 },
                RotatingStarvation::with_base(u(n), 2, 8).take_schedule(len),
            ),
            (
                GeneratorSpec::FictitiousCrash {
                    i: 2,
                    j: 3,
                    t: 3,
                    k: 2,
                    base: 8,
                },
                FictitiousCrash::with_base(SystemSpec::new(2, 3, n).unwrap(), 3, 2, 8)
                    .take_schedule(len),
            ),
            (
                GeneratorSpec::Cycle {
                    period: Schedule::from_indices([0, 1, 1]),
                },
                Cycle::new(Schedule::from_indices([0, 1, 1])).take_schedule(len),
            ),
            (
                GeneratorSpec::AlternatingRotation {
                    groups: vec![set(&[0, 1]), set(&[2, 3])],
                    base: 8,
                },
                AlternatingRotation::with_base(&[set(&[0, 1]), set(&[2, 3])], 8).take_schedule(len),
            ),
            (
                GeneratorSpec::Flapping {
                    p: set(&[0, 1]),
                    q: set(&[2, 3, 4]),
                    bound: 3,
                    filler: Box::new(GeneratorSpec::seeded_random(2)),
                    timely_dwell: (100, 300),
                    untimely_dwell: (50, 150),
                    seed_offset: 5,
                },
                FlappingTimely::new(
                    set(&[0, 1]),
                    set(&[2, 3, 4]),
                    3,
                    SeededRandom::new(u(n), 42 + 2),
                    (100, 300),
                    (50, 150),
                    42 + 5,
                )
                .take_schedule(len),
            ),
            (
                GeneratorSpec::GrayFailure {
                    inner: Box::new(GeneratorSpec::seeded_random(0)),
                    gray: set(&[1, 4]),
                    stretch: 4,
                    seed_offset: 9,
                },
                GrayFailure::new(SeededRandom::new(u(n), 42), set(&[1, 4]), 4, 42 + 9)
                    .take_schedule(len),
            ),
            (
                GeneratorSpec::burst_clog(
                    GeneratorSpec::round_robin(),
                    ProcessId::new(2),
                    16,
                    (30, 90),
                ),
                BurstClog::new(RoundRobin::new(u(n)), ProcessId::new(2), 16, (30, 90), 42)
                    .take_schedule(len),
            ),
            (
                GeneratorSpec::crash_recovery(
                    GeneratorSpec::seeded_random(1),
                    ProcessId::new(3),
                    200,
                    900,
                ),
                CrashRecovery::new(SeededRandom::new(u(n), 42 + 1), ProcessId::new(3), 200, 900)
                    .take_schedule(len),
            ),
        ];
        for (spec, expected) in cases {
            let got = spec.build(u(n), 42).take_schedule(len);
            assert_eq!(got, expected, "spec {spec:?} diverged");
        }
    }

    /// `crashed` on SetTimely reproduces the experiments' hand construction:
    /// crash-filtered filler plus live-member injection.
    #[test]
    fn crashed_set_timely_matches_hand_construction() {
        let n = 5;
        let p = set(&[0, 1]);
        let q = set(&[2, 3, 4]);
        let plan = CrashPlan::all_at(set(&[1, 4]), 500);
        let spec = GeneratorSpec::set_timely(p, q, 3, GeneratorSpec::seeded_random(1))
            .crashed(plan.clone());
        let hand = SetTimely::new(
            p,
            q,
            3,
            CrashAfter::new(SeededRandom::new(u(n), 8), plan.clone()),
        )
        .with_crashes(plan.clone());
        assert_eq!(
            spec.build(u(n), 7).take_schedule(6_000),
            { hand }.take_schedule(6_000)
        );
        assert_eq!(spec.faulty(u(n)), set(&[1, 4]));
        // The guarantee survives the crashes (p0 stays alive).
        let s = spec.build(u(n), 7).take_schedule(6_000);
        assert!(empirical_bound(&s.suffix(1_000), p, q) <= 3);
    }

    /// `crashed` on a non-SetTimely spec is a plain CrashAfter wrapper; an
    /// empty plan is the identity.
    #[test]
    fn crashed_wraps_and_empty_plan_is_identity() {
        let base = GeneratorSpec::round_robin();
        assert_eq!(base.clone().crashed(CrashPlan::new()), base);
        let plan = CrashPlan::new().crash(ProcessId::new(2), 10);
        let spec = base.crashed(plan.clone());
        assert_eq!(spec.family(), "CrashAfter");
        assert_eq!(spec.faulty(u(3)), set(&[2]));
        let s = spec.build(u(3), 0).take_schedule(1_000);
        assert_eq!(s.suffix(10).occurrences(ProcessId::new(2)), 0);
    }

    /// The fault decorators silence nobody by themselves: their faulty set
    /// is exactly their inner spec's, and `crashed` composes around them as
    /// a plain CrashAfter wrapper.
    #[test]
    fn fault_decorators_compose_with_faulty_and_crashed() {
        let n = 5;
        let inner_crashed =
            GeneratorSpec::seeded_random(0).crashed(CrashPlan::new().crash(ProcessId::new(4), 100));
        // Gray over a crash-wrapped inner: faulty passes through.
        let gray = GeneratorSpec::gray_failure(inner_crashed.clone(), set(&[1]), 3);
        assert_eq!(gray.faulty(u(n)), set(&[4]));
        // Crash-recovery victims are NOT faulty (they rejoin).
        let recov =
            GeneratorSpec::crash_recovery(GeneratorSpec::round_robin(), ProcessId::new(2), 10, 50);
        assert_eq!(recov.faulty(u(n)), ProcSet::EMPTY);
        // Flapping reports its filler's faulty set.
        let flap = GeneratorSpec::flapping(
            set(&[0]),
            set(&[1, 2]),
            2,
            inner_crashed,
            (10, 20),
            (10, 20),
        );
        assert_eq!(flap.faulty(u(n)), set(&[4]));
        // Clog adds steps and silences nobody.
        let clog =
            GeneratorSpec::burst_clog(GeneratorSpec::round_robin(), ProcessId::new(0), 8, (5, 9));
        assert_eq!(clog.faulty(u(n)), ProcSet::EMPTY);
        // `crashed` on a decorator wraps it (default arm) and the plan's
        // victims join the faulty set.
        let plan = CrashPlan::new().crash(ProcessId::new(3), 40);
        let crashed_clog = clog.crashed(plan);
        assert_eq!(crashed_clog.family(), "CrashAfter");
        assert_eq!(crashed_clog.faulty(u(n)), set(&[3]));
        let s = crashed_clog.build(u(n), 0).take_schedule(2_000);
        assert_eq!(s.suffix(40).occurrences(ProcessId::new(3)), 0);
    }

    /// FictitiousCrash reports its fictitious set as faulty.
    #[test]
    fn fictitious_faulty_set() {
        let spec = GeneratorSpec::FictitiousCrash {
            i: 1,
            j: 3,
            t: 4,
            k: 2,
            base: 8,
        };
        assert_eq!(spec.faulty(u(6)), set(&[4, 5]));
    }

    /// Replay builds a cursor over the carried schedule, inherits the
    /// carried spec's faulty set, and never nests.
    #[test]
    fn replay_replays_and_inherits() {
        let of =
            GeneratorSpec::round_robin().crashed(CrashPlan::new().crash(ProcessId::new(2), 10));
        let sched = Schedule::from_indices([0, 1, 0, 1]);
        let spec = GeneratorSpec::replay(of.clone(), sched.clone());
        assert_eq!(spec.family(), "Replay");
        assert_eq!(spec.faulty(u(3)), set(&[2]));
        // The cursor ends after the last step: the take is exactly `sched`.
        assert_eq!(spec.build(u(3), 9).take_schedule(100), sched);
        // Replaying a replay reuses the original carried spec.
        match GeneratorSpec::replay(spec, Schedule::from_indices([1])) {
            GeneratorSpec::Replay { of: inner, .. } => assert_eq!(*inner, of),
            other => panic!("expected Replay, got {other:?}"),
        }
    }

    /// Specs are Send + Sync: a grid can be shipped to worker threads.
    #[test]
    fn specs_cross_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GeneratorSpec>();
    }
}
