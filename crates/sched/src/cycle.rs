//! Cycling a finite schedule into an infinite periodic source.
//!
//! Periodic schedules are the cleanest synchronous workloads: every set's
//! timeliness bound is determined by one period. `Cycle` turns any finite
//! [`Schedule`] into its infinite repetition — useful for replaying a
//! recorded execution as a workload, and for constructing exact-bound
//! schedules in tests.

use st_core::{ProcessId, Schedule, StepSource};

/// Infinite repetition of a finite schedule.
///
/// # Examples
///
/// ```
/// use st_core::{Schedule, StepSource};
/// use st_sched::Cycle;
///
/// let mut src = Cycle::new(Schedule::from_indices([0, 1, 2]));
/// assert_eq!(src.take_schedule(7), Schedule::from_indices([0, 1, 2, 0, 1, 2, 0]));
/// ```
#[derive(Clone, Debug)]
pub struct Cycle {
    period: Schedule,
    pos: usize,
}

impl Cycle {
    /// Creates the cyclic source.
    ///
    /// # Panics
    ///
    /// Panics if the schedule is empty (no step to repeat).
    pub fn new(period: Schedule) -> Self {
        assert!(!period.is_empty(), "cannot cycle an empty schedule");
        Cycle { period, pos: 0 }
    }

    /// The period length.
    pub fn period_len(&self) -> usize {
        self.period.len()
    }
}

impl StepSource for Cycle {
    fn next_step(&mut self) -> Option<ProcessId> {
        let p = self.period.step(self.pos);
        self.pos = (self.pos + 1) % self.period.len();
        Some(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_core::timeliness::empirical_bound;
    use st_core::ProcSet;

    #[test]
    fn repeats_verbatim() {
        let mut src = Cycle::new(Schedule::from_indices([2, 0]));
        assert_eq!(
            src.take_schedule(5),
            Schedule::from_indices([2, 0, 2, 0, 2])
        );
        assert_eq!(src.period_len(), 2);
    }

    #[test]
    fn periodic_bounds_are_exact() {
        // Period p0 p1 p1 p1: {p0} wrt {p1} has exactly 3 q-steps between
        // p0 steps (and at the seam) → bound 4, stable at any length.
        let mut src = Cycle::new(Schedule::from_indices([0, 1, 1, 1]));
        let s = src.take_schedule(4_000);
        assert_eq!(
            empirical_bound(&s, ProcSet::from_indices([0]), ProcSet::from_indices([1])),
            4
        );
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_period_rejected() {
        let _ = Cycle::new(Schedule::new());
    }
}
