//! Alternating group rotation: *every group is timely, no individual is*.
//!
//! A generalization of Figure 1 in which **every** process of the system
//! flaps: the universe is partitioned into groups; steps strictly alternate
//! between groups; within each group a single *representative* takes the
//! group's steps, and representatives rotate on ever-growing runs.
//!
//! Consequences, by construction:
//!
//! - each group, viewed as a set, is timely with respect to `Π_n` with
//!   bound equal to the number of groups (its representative appears in
//!   every alternation round);
//! - **no singleton** is timely with respect to any set containing a
//!   process outside it: every process is benched for ever-longer runs
//!   while the other groups (and its own group's other members) keep
//!   stepping;
//! - every process is correct (each returns as representative infinitely
//!   often).
//!
//! This is the workload for experiment E8: a *process-timeliness* failure
//! detector (accusing individuals) flaps forever here, while the paper's
//! *set-timeliness* detector (Figure 2, accusing sets) stabilizes — the
//! motivation of the paper, measured.

use st_core::{ProcSet, ProcessId, StepSource};

/// Strictly alternating groups with growing-run representative rotation.
#[derive(Clone, Debug)]
pub struct AlternatingRotation {
    groups: Vec<Vec<ProcessId>>,
    /// Base run length; the `e`-th run of a group lasts `base · (e+1)` of
    /// that group's steps.
    base: u64,
    /// Round-robin position over groups.
    at_group: usize,
    /// Per-group: (representative index, steps left in run, run number).
    state: Vec<(usize, u64, u64)>,
}

impl AlternatingRotation {
    /// Creates the generator from a partition into groups.
    ///
    /// # Panics
    ///
    /// Panics if there are no groups, any group is empty, or the groups
    /// overlap.
    pub fn new(groups: &[ProcSet]) -> Self {
        Self::with_base(groups, 8)
    }

    /// Like [`new`](Self::new) with an explicit base run length.
    ///
    /// # Panics
    ///
    /// See [`new`](Self::new); additionally panics if `base == 0`.
    pub fn with_base(groups: &[ProcSet], base: u64) -> Self {
        assert!(!groups.is_empty(), "need at least one group");
        assert!(base >= 1, "base run length must be positive");
        let mut seen = ProcSet::EMPTY;
        for g in groups {
            assert!(!g.is_empty(), "groups must be non-empty");
            assert!(seen.is_disjoint(*g), "groups must be disjoint");
            seen = seen.union(*g);
        }
        AlternatingRotation {
            groups: groups.iter().map(|g| g.to_vec()).collect(),
            base,
            at_group: 0,
            state: groups.iter().map(|_| (0usize, base, 0u64)).collect(),
        }
    }

    /// The timeliness bound guaranteed for each group with respect to
    /// `Π_n`: the number of groups (each alternation round contains one
    /// step of every group).
    pub fn guaranteed_bound(&self) -> usize {
        self.groups.len()
    }
}

impl StepSource for AlternatingRotation {
    fn next_step(&mut self) -> Option<ProcessId> {
        let g = self.at_group;
        self.at_group = (self.at_group + 1) % self.groups.len();
        let (rep, left, run) = &mut self.state[g];
        let p = self.groups[g][*rep];
        *left -= 1;
        if *left == 0 {
            *rep = (*rep + 1) % self.groups[g].len();
            *run += 1;
            *left = self.base * (*run + 1);
        }
        Some(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_core::timeliness::{empirical_bound, max_q_steps_in_p_free_interval};
    use st_core::Universe;

    fn groups_2x2() -> Vec<ProcSet> {
        vec![ProcSet::from_indices([0, 1]), ProcSet::from_indices([2, 3])]
    }

    #[test]
    fn groups_are_timely_sets() {
        let groups = groups_2x2();
        let mut gen = AlternatingRotation::new(&groups);
        let bound = gen.guaranteed_bound();
        let s = gen.take_schedule(60_000);
        let full = ProcSet::full(Universe::new(4).unwrap());
        for g in &groups {
            assert!(
                empirical_bound(&s, *g, full) <= bound,
                "group {g} must be timely"
            );
        }
    }

    #[test]
    fn no_singleton_is_timely() {
        let mut gen = AlternatingRotation::new(&groups_2x2());
        let s = gen.take_schedule(120_000);
        let full = ProcSet::full(Universe::new(4).unwrap());
        for idx in 0..4usize {
            let single = ProcSet::from_indices([idx]);
            let short = max_q_steps_in_p_free_interval(&s.prefix(12_000), single, full);
            let long = max_q_steps_in_p_free_interval(&s, single, full);
            assert!(
                long > short && long > 100,
                "p{idx} must starve unboundedly ({short} vs {long})"
            );
        }
    }

    #[test]
    fn all_processes_correct() {
        let mut gen = AlternatingRotation::new(&groups_2x2());
        let s = gen.take_schedule(200_000);
        let tail = s.suffix(s.len() / 2);
        assert_eq!(
            tail.participants(),
            ProcSet::full(Universe::new(4).unwrap())
        );
    }

    #[test]
    fn three_groups_alternate_strictly() {
        let groups = vec![
            ProcSet::from_indices([0]),
            ProcSet::from_indices([1, 2]),
            ProcSet::from_indices([3, 4]),
        ];
        let mut gen = AlternatingRotation::new(&groups);
        let s = gen.take_schedule(9_000);
        // Every window of 3 consecutive steps contains one step per group.
        for w in s.as_slice().windows(3) {
            for g in &groups {
                assert_eq!(w.iter().filter(|p| g.contains(**p)).count(), 1);
            }
        }
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn overlapping_groups_rejected() {
        let _ = AlternatingRotation::new(&[
            ProcSet::from_indices([0, 1]),
            ProcSet::from_indices([1, 2]),
        ]);
    }
}
