//! The rotating-starvation adversary for the `i > k` impossibility side
//! (Theorem 26 part 2).
//!
//! Epoch `e` picks the `e mod C(n,k)`-th size-`k` subset `K_e` and, for a
//! stretch of `base · (e+1)` steps, round-robins over `Π_n \ K_e` only.
//! Consequences, by construction:
//!
//! - **every** set of size `k+1` (and larger) is timely with respect to
//!   `Π_n` with bound `2(n − k) − 1`: a size-`(k+1)` set always has a member
//!   outside the currently starved `K_e`, and that member recurs at least
//!   once every `n − k` steps within an epoch; across an epoch boundary the
//!   member-free gap is at most `2(n − k − 1)` steps;
//! - **no** set of size `k` is timely with respect to any set `Q` of size
//!   `> k`: when `K_e = K` the starvation stretch contains ever more steps of
//!   `Q \ K` (non-empty since `|Q| > k`) and none of `K`;
//! - every process is correct (it runs in all epochs not starving it).
//!
//! So the output is in `S^{k+1}_{j,n}` for every `j ≥ k+1`, but in **no**
//! `S^k_{j',n}` with `j' > k` — exactly the separation Theorem 26 needs: a
//! `(k,k,n)` protocol stack (complete for `S^k_{k+1,n}`) must stall here,
//! while safety must hold.

use st_core::subsets::{binomial, unrank};
use st_core::{ProcSet, ProcessId, StepSource, Universe};

/// Rotating starvation of every size-`k` subset with growing epochs.
#[derive(Clone, Debug)]
pub struct RotatingStarvation {
    universe: Universe,
    k: usize,
    /// Base epoch length (steps of the first epoch; epoch `e` runs
    /// `base · (e+1)` steps).
    base: u64,
    /// Current epoch number.
    epoch: u64,
    /// Steps left in the current epoch.
    left: u64,
    /// Round-robin members for the current epoch.
    members: Vec<ProcessId>,
    pos: usize,
}

impl RotatingStarvation {
    /// Creates the adversary starving every size-`k` subset of `universe`.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ k < n` (starving everything leaves no one to run).
    pub fn new(universe: Universe, k: usize) -> Self {
        Self::with_base(universe, k, 8)
    }

    /// Like [`new`](Self::new) with an explicit base epoch length.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ k < n` and `base ≥ 1`.
    pub fn with_base(universe: Universe, k: usize, base: u64) -> Self {
        let n = universe.n();
        assert!(k >= 1 && k < n, "need 1 <= k < n (got k={k}, n={n})");
        assert!(base >= 1, "base epoch length must be positive");
        let mut gen = RotatingStarvation {
            universe,
            k,
            base,
            epoch: 0,
            left: 0,
            members: Vec::new(),
            pos: 0,
        };
        gen.enter_epoch(0);
        gen
    }

    /// The guaranteed-timely set size: `k + 1` (every set of that size is
    /// timely wrt `Π_n` with bound [`guaranteed_bound`](Self::guaranteed_bound)).
    pub fn timely_size(&self) -> usize {
        self.k + 1
    }

    /// The timeliness bound guaranteed for every size-`k+1` set wrt `Π_n`.
    ///
    /// Within an epoch a set's representative recurs every `n − k` steps; at
    /// an epoch boundary its last occurrence may be `n − k − 1` steps before
    /// the epoch ends and its next `n − k − 1` steps after the new epoch
    /// starts, so the longest representative-free run is `2(n − k − 1)`.
    pub fn guaranteed_bound(&self) -> usize {
        2 * (self.universe.n() - self.k) - 1
    }

    /// The subset starved during epoch `e`.
    pub fn starved_in_epoch(&self, e: u64) -> ProcSet {
        let count = binomial(self.universe.n(), self.k);
        unrank(self.universe, self.k, e % count)
    }

    fn enter_epoch(&mut self, e: u64) {
        self.epoch = e;
        self.left = self.base * (e + 1);
        let starved = self.starved_in_epoch(e);
        self.members = starved.complement(self.universe).to_vec();
        self.pos = 0;
    }
}

impl StepSource for RotatingStarvation {
    fn next_step(&mut self) -> Option<ProcessId> {
        if self.left == 0 {
            self.enter_epoch(self.epoch + 1);
        }
        self.left -= 1;
        let p = self.members[self.pos];
        self.pos = (self.pos + 1) % self.members.len();
        Some(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_core::subsets::KSubsets;
    use st_core::timeliness::{empirical_bound, max_q_steps_in_p_free_interval};

    fn u(n: usize) -> Universe {
        Universe::new(n).unwrap()
    }

    #[test]
    fn every_k_plus_1_set_is_timely() {
        let n = 5;
        let k = 2;
        let mut gen = RotatingStarvation::new(u(n), k);
        let bound = gen.guaranteed_bound();
        let s = gen.take_schedule(30_000);
        let full = ProcSet::full(u(n));
        for pset in KSubsets::new(u(n), k + 1) {
            assert!(
                empirical_bound(&s, pset, full) <= bound,
                "{pset} must be timely wrt Π_n"
            );
        }
    }

    #[test]
    fn no_k_set_is_timely_wrt_larger_sets() {
        let n = 5;
        let k = 2;
        let mut gen = RotatingStarvation::new(u(n), k);
        let s = gen.take_schedule(60_000);
        let full = ProcSet::full(u(n));
        for kset in KSubsets::new(u(n), k) {
            // Against Π_n (any size-(t+1) superset witnesses through
            // Observation 3), the starvation run grows beyond any small cap.
            assert!(
                max_q_steps_in_p_free_interval(&s, kset, full) >= 50,
                "{kset} must be starved"
            );
        }
    }

    #[test]
    fn starvation_grows_between_prefixes() {
        let n = 4;
        let k = 1;
        let mut gen = RotatingStarvation::new(u(n), k);
        let s = gen.take_schedule(80_000);
        let short = s.prefix(5_000);
        let p0 = ProcSet::from_indices([0]);
        let full = ProcSet::full(u(n));
        let early = max_q_steps_in_p_free_interval(&short, p0, full);
        let late = max_q_steps_in_p_free_interval(&s, p0, full);
        assert!(late > early, "starvation must grow: {early} vs {late}");
    }

    #[test]
    fn all_processes_correct() {
        let mut gen = RotatingStarvation::new(u(6), 2);
        let s = gen.take_schedule(50_000);
        let tail = s.suffix(s.len() / 2);
        assert_eq!(tail.participants(), ProcSet::full(u(6)));
    }

    #[test]
    fn epoch_rotation_covers_all_subsets() {
        let gen = RotatingStarvation::new(u(4), 2);
        let mut seen = std::collections::BTreeSet::new();
        for e in 0..binomial(4, 2) {
            seen.insert(gen.starved_in_epoch(e));
        }
        assert_eq!(seen.len() as u64, binomial(4, 2));
    }

    #[test]
    #[should_panic(expected = "1 <= k < n")]
    fn k_equal_n_rejected() {
        let _ = RotatingStarvation::new(u(3), 3);
    }
}
