//! The fictitious-crash adversary for the `j − i < t + 1 − k` impossibility
//! side (Theorem 27, case 2b).
//!
//! The paper's proof builds a system of `n` processes in which `j − i`
//! *fictitious* processes are crashed from the start (set `C`) and the
//! remaining `m = n − (j − i)` *real* processes run asynchronously. Any set
//! `P_i` of `i` real processes is then timely with respect to `P_i ∪ C`
//! (size `j`) — trivially, with bound 1, because every step of `P_i ∪ C` *is*
//! a step of `P_i` — so every such schedule lies in `S^i_{j,n}`.
//!
//! This generator sharpens "run asynchronously" into a growing-epoch **solo
//! rotation** over the real processes: epoch `e` runs one real process alone
//! for `base · (e+1)` steps. Then for any set `K` of size `k` and any set
//! `Q'` of size `t + 1`: `Q'` contains at least `t + 1 − (j − i)` real
//! processes, which exceeds `k` exactly when `j − i < t + 1 − k`; hence `Q'`
//! has a real member outside `K`, whose growing solo epochs starve `K`
//! unboundedly. So **no size-`k` set is timely wrt any size-`(t+1)` set** —
//! the schedule is in `S^i_{j,n}` but outside `S^k_{t+1,n}`, and a complete
//! `(t,k,n)` protocol stack must stall on it while preserving safety.
//! (`|C| = j − i ≤ t − k < t`, so the fault budget is respected and
//! termination *is* owed — that is the contradiction the proof exploits.)

use st_core::{ProcSet, ProcessId, StepSource, SystemSpec, Universe};

/// The Theorem 27 case-2b construction as a generator.
#[derive(Clone, Debug)]
pub struct FictitiousCrash {
    real: Vec<ProcessId>,
    crashed: ProcSet,
    spec: SystemSpec,
    base: u64,
    epoch: u64,
    left: u64,
}

impl FictitiousCrash {
    /// Builds the adversary for system `S^i_{j,n}` against task parameters
    /// `(t, k)`.
    ///
    /// # Panics
    ///
    /// Panics unless the unsolvability condition `j − i < t + 1 − k` holds
    /// with `i ≤ k` (for `i > k` use
    /// [`RotatingStarvation`](crate::RotatingStarvation)), and unless
    /// parameters are in range (`1 ≤ i ≤ j ≤ n`, `1 ≤ k ≤ t ≤ n−1`).
    pub fn new(spec: SystemSpec, t: usize, k: usize) -> Self {
        Self::with_base(spec, t, k, 8)
    }

    /// Like [`new`](Self::new) with an explicit base epoch length.
    ///
    /// # Panics
    ///
    /// See [`new`](Self::new); additionally panics if `base == 0`.
    pub fn with_base(spec: SystemSpec, t: usize, k: usize, base: u64) -> Self {
        let (i, j, n) = (spec.i(), spec.j(), spec.n());
        assert!(base >= 1, "base epoch length must be positive");
        assert!(k >= 1 && k <= t && t < n, "need 1 <= k <= t <= n-1");
        assert!(i <= k, "for i > k use RotatingStarvation");
        assert!(
            j - i < t + 1 - k,
            "S^{i}_{{{j},{n}}} solves ({t},{k},{n})-agreement; no adversary exists"
        );
        let universe = spec.universe();
        let crashed_count = j - i;
        let real: Vec<ProcessId> = universe.processes().take(n - crashed_count).collect();
        let crashed: ProcSet = universe.processes().skip(n - crashed_count).collect();
        FictitiousCrash {
            real,
            crashed,
            spec,
            base,
            epoch: 0,
            left: base,
        }
    }

    /// The fictitious processes, crashed from the start (`|C| = j − i`).
    pub fn crashed(&self) -> ProcSet {
        self.crashed
    }

    /// The witness pair certifying membership in `S^i_{j,n}`: the first `i`
    /// real processes against themselves plus the crashed set, timely with
    /// bound 1.
    pub fn membership_witness(&self) -> (ProcSet, ProcSet) {
        let p_i: ProcSet = self.real.iter().copied().take(self.spec.i()).collect();
        (p_i, p_i.union(self.crashed))
    }

    /// The system this schedule belongs to.
    pub fn spec(&self) -> SystemSpec {
        self.spec
    }

    /// The universe.
    pub fn universe(&self) -> Universe {
        self.spec.universe()
    }
}

impl StepSource for FictitiousCrash {
    fn next_step(&mut self) -> Option<ProcessId> {
        if self.left == 0 {
            self.epoch += 1;
            self.left = self.base * (self.epoch + 1);
        }
        self.left -= 1;
        let soloist = self.real[(self.epoch as usize) % self.real.len()];
        Some(soloist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_core::subsets::KSubsets;
    use st_core::timeliness::{empirical_bound, max_q_steps_in_p_free_interval};

    fn spec(i: usize, j: usize, n: usize) -> SystemSpec {
        SystemSpec::new(i, j, n).unwrap()
    }

    #[test]
    fn membership_witness_has_bound_one() {
        // S^2_{3,5} vs (3,2,5): j−i = 1 < t+1−k = 2 → unsolvable.
        let mut gen = FictitiousCrash::new(spec(2, 3, 5), 3, 2);
        let (p, q) = gen.membership_witness();
        assert_eq!(p.len(), 2);
        assert_eq!(q.len(), 3);
        let s = gen.take_schedule(20_000);
        assert_eq!(empirical_bound(&s, p, q), 1);
    }

    #[test]
    fn crashed_processes_never_step() {
        let mut gen = FictitiousCrash::new(spec(1, 3, 6), 4, 2);
        let crashed = gen.crashed();
        assert_eq!(crashed.len(), 2);
        let s = gen.take_schedule(10_000);
        for c in crashed.iter() {
            assert_eq!(s.occurrences(c), 0);
        }
    }

    #[test]
    fn no_k_set_timely_wrt_any_t_plus_1_set() {
        // S^1_{2,5} vs (3,2,5): j−i = 1 < t+1−k = 2.
        let t = 3;
        let k = 2;
        let mut gen = FictitiousCrash::new(spec(1, 2, 5), t, k);
        let u = gen.universe();
        let s = gen.take_schedule(60_000);
        for kset in KSubsets::new(u, k) {
            for qset in KSubsets::new(u, t + 1) {
                assert!(
                    max_q_steps_in_p_free_interval(&s, kset, qset) >= 40,
                    "{kset} wrt {qset} must be starved"
                );
            }
        }
    }

    #[test]
    fn fault_budget_is_respected() {
        // |C| = j − i must stay strictly below t.
        let gen = FictitiousCrash::new(spec(2, 4, 6), 5, 2);
        assert!(gen.crashed().len() < 5);
    }

    #[test]
    fn real_processes_all_correct() {
        let mut gen = FictitiousCrash::new(spec(1, 2, 4), 2, 1);
        let crashed = gen.crashed();
        let s = gen.take_schedule(50_000);
        let tail = s.suffix(s.len() * 3 / 4);
        let u = gen.universe();
        assert_eq!(tail.participants(), crashed.complement(u));
    }

    #[test]
    #[should_panic(expected = "no adversary exists")]
    fn solvable_parameters_rejected() {
        // S^2_{4,6} solves (3,2,6): j−i = 2 ≥ t+1−k = 2.
        let _ = FictitiousCrash::new(spec(2, 4, 6), 3, 2);
    }

    #[test]
    #[should_panic(expected = "RotatingStarvation")]
    fn i_greater_than_k_rejected() {
        let _ = FictitiousCrash::new(spec(3, 3, 6), 3, 2);
    }
}
