//! Cross-checks between generators and the `st-core` timeliness analyzer.
//!
//! Generators in this crate make *constructive* claims ("this output is in
//! `S^i_{j,n}`", "no size-`k` set is timely here"). These helpers turn those
//! claims into checkable evidence over finite prefixes, and are used both by
//! this crate's tests and by the experiment harness to certify workloads
//! before measuring protocols on them.

use st_core::subsets::KSubsets;
use st_core::timeliness::{empirical_bound, max_q_steps_in_p_free_interval};
use st_core::{ProcSet, ProcessId, Schedule, StepSource, Universe};

use crate::faults::PhaseSegment;

/// Generates a prefix and verifies a claimed timely pair against it.
/// Returns the prefix (for further analysis) on success.
///
/// # Errors
///
/// Returns the offending empirical bound when the claim fails.
pub fn certify_timely<S: StepSource>(
    gen: &mut S,
    prefix_len: usize,
    p: ProcSet,
    q: ProcSet,
    bound: usize,
) -> Result<Schedule, usize> {
    let s = gen.take_schedule(prefix_len);
    let eb = empirical_bound(&s, p, q);
    if eb <= bound {
        Ok(s)
    } else {
        Err(eb)
    }
}

/// Starvation evidence for the claim "no size-`k` set is timely with respect
/// to any size-`q_size` set": the **minimum**, over all pairs, of the longest
/// `K`-free `Q`-run. The claim is supported when this value is large (and
/// keeps growing with the prefix); a timely pair would pin it to a constant.
pub fn min_starvation_evidence(s: &Schedule, universe: Universe, k: usize, q_size: usize) -> usize {
    let mut min_evidence = usize::MAX;
    for kset in KSubsets::new(universe, k) {
        for qset in KSubsets::new(universe, q_size) {
            let run = max_q_steps_in_p_free_interval(s, kset, qset);
            min_evidence = min_evidence.min(run);
            if min_evidence == 0 {
                return 0;
            }
        }
    }
    min_evidence
}

/// Convenience: the evidence of [`min_starvation_evidence`] computed on two
/// nested prefixes, certifying both magnitude and growth.
///
/// Returns `(evidence_short, evidence_long)`.
pub fn starvation_growth<S: StepSource>(
    gen: &mut S,
    short_len: usize,
    long_len: usize,
    universe: Universe,
    k: usize,
    q_size: usize,
) -> (usize, usize) {
    assert!(short_len < long_len, "short prefix must be shorter");
    let long = gen.take_schedule(long_len);
    let short = long.prefix(short_len);
    (
        min_starvation_evidence(&short, universe, k, q_size),
        min_starvation_evidence(&long, universe, k, q_size),
    )
}

/// Certifies that `p` takes no step at schedule positions in `[from, to)` —
/// the claim a crash window ([`CrashAfter`](crate::CrashAfter)) or outage
/// window ([`CrashRecovery`](crate::CrashRecovery)) makes about the emitted
/// schedule. An open-ended window is expressed with `to = u64::MAX`.
///
/// # Errors
///
/// Returns the first offending position.
pub fn certify_absence_window(s: &Schedule, p: ProcessId, from: u64, to: u64) -> Result<(), u64> {
    for (pos, step) in s.iter().enumerate() {
        let pos = pos as u64;
        if pos >= to {
            break;
        }
        if pos >= from && step == p {
            return Err(pos);
        }
    }
    Ok(())
}

/// Certifies that every member of `set` appears in the schedule — the
/// liveness claim of [`GrayFailure`](crate::GrayFailure): slow, but not
/// silent.
///
/// # Errors
///
/// Returns the first member with no step.
pub fn certify_all_live(s: &Schedule, set: ProcSet) -> Result<(), ProcessId> {
    let seen = s.participants();
    match set.difference(seen).min() {
        Some(missing) => Err(missing),
        None => Ok(()),
    }
}

/// Certifies a [`FlappingTimely`](crate::FlappingTimely) phase log against
/// the schedule it was recorded for: every *enforcing* segment's slice must
/// satisfy the bound.
///
/// # Errors
///
/// Returns `(segment index, offending empirical bound)` for the first
/// enforcing segment that fails.
pub fn certify_flapping_segments(
    s: &Schedule,
    segments: &[PhaseSegment],
    p: ProcSet,
    q: ProcSet,
    bound: usize,
) -> Result<(), (usize, usize)> {
    for (ix, seg) in segments.iter().enumerate() {
        if !seg.enforcing {
            continue;
        }
        let slice = s.prefix(seg.end as usize).suffix(seg.start as usize);
        let eb = empirical_bound(&slice, p, q);
        if eb > bound {
            return Err((ix, eb));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        CrashRecovery, FlappingTimely, GrayFailure, RotatingStarvation, SeededRandom, SetTimely,
    };

    fn u(n: usize) -> Universe {
        Universe::new(n).unwrap()
    }

    #[test]
    fn certify_accepts_conforming_generator() {
        let p = ProcSet::from_indices([0]);
        let q = ProcSet::from_indices([1, 2]);
        let mut gen = SetTimely::new(p, q, 3, SeededRandom::new(u(3), 4));
        assert!(certify_timely(&mut gen, 5_000, p, q, 3).is_ok());
    }

    #[test]
    fn certify_rejects_false_claim() {
        // Pure random filler over 3 processes: {p0} wrt {p1,p2} with bound 2
        // will be violated quickly.
        let mut gen = SeededRandom::new(u(3), 11);
        let p = ProcSet::from_indices([0]);
        let q = ProcSet::from_indices([1, 2]);
        let res = certify_timely(&mut gen, 5_000, p, q, 2);
        assert!(res.is_err());
        assert!(res.unwrap_err() > 2);
    }

    #[test]
    fn starvation_evidence_grows_for_adversary() {
        let mut gen = RotatingStarvation::new(u(4), 1);
        let (short, long) = starvation_growth(&mut gen, 3_000, 40_000, u(4), 1, 2);
        assert!(short >= 1);
        assert!(long > short, "evidence must grow: {short} vs {long}");
    }

    #[test]
    fn starvation_evidence_bounded_for_timely_schedule() {
        // Round-robin: every singleton timely wrt everything → evidence stays
        // below n.
        let mut gen = crate::RoundRobin::new(u(4));
        let s = gen.take_schedule(20_000);
        assert!(min_starvation_evidence(&s, u(4), 1, 2) < 4);
    }

    #[test]
    fn absence_window_certifies_crash_recovery() {
        let victim = ProcessId::new(1);
        let mut gen = CrashRecovery::new(SeededRandom::new(u(3), 5), victim, 100, 400);
        let s = gen.take_schedule(2_000);
        assert_eq!(certify_absence_window(&s, victim, 100, 400), Ok(()));
        // The victim rejoins, so widening the window finds a step.
        let err = certify_absence_window(&s, victim, 100, u64::MAX);
        assert!(err.is_err_and(|pos| pos >= 400));
    }

    #[test]
    fn all_live_certifies_gray_failure() {
        let gray = ProcSet::from_indices([0, 2]);
        let mut gen = GrayFailure::new(SeededRandom::new(u(4), 1), gray, 6, 3);
        let s = gen.take_schedule(5_000);
        assert_eq!(certify_all_live(&s, ProcSet::full(u(4))), Ok(()));
        // A process with no steps is reported.
        let silent = Schedule::from_indices([0, 1, 0, 1]);
        assert_eq!(
            certify_all_live(&silent, ProcSet::from_indices([1, 3])),
            Err(ProcessId::new(3))
        );
    }

    #[test]
    fn flapping_segments_certify_against_recorded_log() {
        let p = ProcSet::from_indices([0]);
        let q = ProcSet::from_indices([1, 2]);
        let mut gen =
            FlappingTimely::new(p, q, 3, SeededRandom::new(u(3), 7), (50, 150), (30, 80), 13);
        let s = gen.take_schedule(4_000);
        assert_eq!(
            certify_flapping_segments(&s, gen.segments(), p, q, 3),
            Ok(())
        );
        // A deliberately wrong (tighter) claim fails with a witness.
        assert!(certify_flapping_segments(&s, gen.segments(), p, q, 0).is_err());
    }
}
