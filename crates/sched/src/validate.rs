//! Cross-checks between generators and the `st-core` timeliness analyzer.
//!
//! Generators in this crate make *constructive* claims ("this output is in
//! `S^i_{j,n}`", "no size-`k` set is timely here"). These helpers turn those
//! claims into checkable evidence over finite prefixes, and are used both by
//! this crate's tests and by the experiment harness to certify workloads
//! before measuring protocols on them.

use st_core::subsets::KSubsets;
use st_core::timeliness::{empirical_bound, max_q_steps_in_p_free_interval};
use st_core::{ProcSet, Schedule, StepSource, Universe};

/// Generates a prefix and verifies a claimed timely pair against it.
/// Returns the prefix (for further analysis) on success.
///
/// # Errors
///
/// Returns the offending empirical bound when the claim fails.
pub fn certify_timely<S: StepSource>(
    gen: &mut S,
    prefix_len: usize,
    p: ProcSet,
    q: ProcSet,
    bound: usize,
) -> Result<Schedule, usize> {
    let s = gen.take_schedule(prefix_len);
    let eb = empirical_bound(&s, p, q);
    if eb <= bound {
        Ok(s)
    } else {
        Err(eb)
    }
}

/// Starvation evidence for the claim "no size-`k` set is timely with respect
/// to any size-`q_size` set": the **minimum**, over all pairs, of the longest
/// `K`-free `Q`-run. The claim is supported when this value is large (and
/// keeps growing with the prefix); a timely pair would pin it to a constant.
pub fn min_starvation_evidence(s: &Schedule, universe: Universe, k: usize, q_size: usize) -> usize {
    let mut min_evidence = usize::MAX;
    for kset in KSubsets::new(universe, k) {
        for qset in KSubsets::new(universe, q_size) {
            let run = max_q_steps_in_p_free_interval(s, kset, qset);
            min_evidence = min_evidence.min(run);
            if min_evidence == 0 {
                return 0;
            }
        }
    }
    min_evidence
}

/// Convenience: the evidence of [`min_starvation_evidence`] computed on two
/// nested prefixes, certifying both magnitude and growth.
///
/// Returns `(evidence_short, evidence_long)`.
pub fn starvation_growth<S: StepSource>(
    gen: &mut S,
    short_len: usize,
    long_len: usize,
    universe: Universe,
    k: usize,
    q_size: usize,
) -> (usize, usize) {
    assert!(short_len < long_len, "short prefix must be shorter");
    let long = gen.take_schedule(long_len);
    let short = long.prefix(short_len);
    (
        min_starvation_evidence(&short, universe, k, q_size),
        min_starvation_evidence(&long, universe, k, q_size),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RotatingStarvation, SeededRandom, SetTimely};

    fn u(n: usize) -> Universe {
        Universe::new(n).unwrap()
    }

    #[test]
    fn certify_accepts_conforming_generator() {
        let p = ProcSet::from_indices([0]);
        let q = ProcSet::from_indices([1, 2]);
        let mut gen = SetTimely::new(p, q, 3, SeededRandom::new(u(3), 4));
        assert!(certify_timely(&mut gen, 5_000, p, q, 3).is_ok());
    }

    #[test]
    fn certify_rejects_false_claim() {
        // Pure random filler over 3 processes: {p0} wrt {p1,p2} with bound 2
        // will be violated quickly.
        let mut gen = SeededRandom::new(u(3), 11);
        let p = ProcSet::from_indices([0]);
        let q = ProcSet::from_indices([1, 2]);
        let res = certify_timely(&mut gen, 5_000, p, q, 2);
        assert!(res.is_err());
        assert!(res.unwrap_err() > 2);
    }

    #[test]
    fn starvation_evidence_grows_for_adversary() {
        let mut gen = RotatingStarvation::new(u(4), 1);
        let (short, long) = starvation_growth(&mut gen, 3_000, 40_000, u(4), 1, 2);
        assert!(short >= 1);
        assert!(long > short, "evidence must grow: {short} vs {long}");
    }

    #[test]
    fn starvation_evidence_bounded_for_timely_schedule() {
        // Round-robin: every singleton timely wrt everything → evidence stays
        // below n.
        let mut gen = crate::RoundRobin::new(u(4));
        let s = gen.take_schedule(20_000);
        assert!(min_starvation_evidence(&s, u(4), 1, 2) < 4);
    }
}
