//! The Figure 1 schedule family.
//!
//! The paper's Figure 1 exhibits the phenomenon that motivates set
//! timeliness: in `S = [(p1·q)^i (p2·q)^i]_{i=1..∞}`, neither `p1` nor `p2`
//! is timely with respect to `q` (each suffers ever-longer absences), yet the
//! *set* `{p1, p2}` is timely with respect to `{q}` with bound 2.
//!
//! [`GeneralizedFigure1`] extends the construction to a timely set `P` of any
//! size against an observed set `Q`: epoch `e` schedules, for each `m ∈ P` in
//! turn, `e` repetitions of the unit `m · q_1 · q_2 ⋯ q_|Q|`. Then `P` is
//! timely wrt `Q` with bound `|Q| + 1`, while each proper subset of `P` is
//! starved for ever-longer stretches (hence no strict subset of `P` is timely
//! wrt `Q` in the limit).

use st_core::{ProcSet, ProcessId, StepSource};

/// The literal Figure 1 schedule `[(p1·q)^i (p2·q)^i]` with growing `i`.
///
/// # Examples
///
/// ```
/// use st_core::{ProcessId, StepSource, Schedule};
/// use st_sched::Figure1;
///
/// let mut f = Figure1::new(ProcessId::new(0), ProcessId::new(1), ProcessId::new(2));
/// // i = 1: p1 q p2 q; i = 2: p1 q p1 q p2 q p2 q; ...
/// assert_eq!(
///     f.take_schedule(12),
///     Schedule::from_indices([0, 2, 1, 2, 0, 2, 0, 2, 1, 2, 1, 2])
/// );
/// ```
#[derive(Clone, Debug)]
pub struct Figure1 {
    inner: GeneralizedFigure1,
}

impl Figure1 {
    /// Creates the schedule for processes `p1`, `p2` and observed process
    /// `q`.
    ///
    /// # Panics
    ///
    /// Panics if the three processes are not distinct.
    pub fn new(p1: ProcessId, p2: ProcessId, q: ProcessId) -> Self {
        assert!(p1 != p2 && p1 != q && p2 != q, "processes must be distinct");
        Figure1 {
            inner: GeneralizedFigure1::new(ProcSet::singleton(p1).with(p2), ProcSet::singleton(q)),
        }
    }
}

impl StepSource for Figure1 {
    fn next_step(&mut self) -> Option<ProcessId> {
        self.inner.next_step()
    }
}

/// The generalized construction: `P` collectively timely wrt `Q` with bound
/// `|Q| + 1`, while every proper subset of `P` is starved without bound.
#[derive(Clone, Debug)]
pub struct GeneralizedFigure1 {
    p_members: Vec<ProcessId>,
    q_members: Vec<ProcessId>,
    /// Current epoch (the `i` of Figure 1); units per member double role.
    epoch: u64,
    /// Index into `p_members` of the member owning the current block.
    member: usize,
    /// Units of the current member's block already emitted.
    unit: u64,
    /// Position within the current unit: 0 = the member step, 1..=|Q| = the
    /// Q sweep.
    offset: usize,
}

impl GeneralizedFigure1 {
    /// Creates the generator for timely set `p` against observed set `q`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is empty, `q` is empty, or the sets intersect (the
    /// construction needs disjointness so that subsets of `P` are really
    /// starved while `Q` steps).
    pub fn new(p: ProcSet, q: ProcSet) -> Self {
        assert!(!p.is_empty(), "P must be non-empty");
        assert!(!q.is_empty(), "Q must be non-empty");
        assert!(p.is_disjoint(q), "P and Q must be disjoint");
        GeneralizedFigure1 {
            p_members: p.to_vec(),
            q_members: q.to_vec(),
            epoch: 1,
            member: 0,
            unit: 0,
            offset: 0,
        }
    }

    /// The guaranteed timeliness bound of `P` wrt `Q`: `|Q| + 1`.
    pub fn guaranteed_bound(&self) -> usize {
        self.q_members.len() + 1
    }
}

impl StepSource for GeneralizedFigure1 {
    fn next_step(&mut self) -> Option<ProcessId> {
        let step = if self.offset == 0 {
            self.p_members[self.member]
        } else {
            self.q_members[self.offset - 1]
        };
        // Advance position: unit = member step followed by the Q sweep.
        self.offset += 1;
        if self.offset > self.q_members.len() {
            self.offset = 0;
            self.unit += 1;
            if self.unit >= self.epoch {
                self.unit = 0;
                self.member += 1;
                if self.member >= self.p_members.len() {
                    self.member = 0;
                    self.epoch += 1;
                }
            }
        }
        Some(step)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_core::timeliness::{empirical_bound, max_q_steps_in_p_free_interval};

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn figure1_literal_prefix() {
        let mut f = Figure1::new(p(0), p(1), p(2));
        let s = f.take_schedule(4 + 8 + 12);
        // Epoch boundaries: i=1 has 4 steps, i=2 has 8, i=3 has 12.
        assert_eq!(s.prefix(4), st_core::Schedule::from_indices([0, 2, 1, 2]));
        assert_eq!(
            s.suffix(4).prefix(8),
            st_core::Schedule::from_indices([0, 2, 0, 2, 1, 2, 1, 2])
        );
    }

    #[test]
    fn pair_timely_with_bound_two() {
        let mut f = Figure1::new(p(0), p(1), p(2));
        let s = f.take_schedule(5000);
        assert_eq!(
            empirical_bound(
                &s,
                ProcSet::from_indices([0, 1]),
                ProcSet::from_indices([2])
            ),
            2
        );
    }

    #[test]
    fn singletons_starve_without_bound() {
        let mut f = Figure1::new(p(0), p(1), p(2));
        let short = f.take_schedule(500);
        let mut f2 = Figure1::new(p(0), p(1), p(2));
        let long = f2.take_schedule(5000);
        for target in [0usize, 1] {
            let pset = ProcSet::from_indices([target]);
            let q = ProcSet::from_indices([2]);
            let b_short = empirical_bound(&short, pset, q);
            let b_long = empirical_bound(&long, pset, q);
            assert!(
                b_long > b_short,
                "singleton p{target} bound must keep growing: {b_short} vs {b_long}"
            );
        }
    }

    #[test]
    fn generalized_bound_holds() {
        let pset = ProcSet::from_indices([0, 1, 2]);
        let qset = ProcSet::from_indices([3, 4]);
        let mut g = GeneralizedFigure1::new(pset, qset);
        let bound = g.guaranteed_bound();
        assert_eq!(bound, 3);
        let s = g.take_schedule(20_000);
        assert!(empirical_bound(&s, pset, qset) <= bound);
    }

    #[test]
    fn generalized_proper_subsets_starve() {
        let pset = ProcSet::from_indices([0, 1, 2]);
        let qset = ProcSet::from_indices([3]);
        let mut g = GeneralizedFigure1::new(pset, qset);
        let s = g.take_schedule(30_000);
        // Every 2-subset of P misses a member whose blocks grow unboundedly.
        for drop in 0..3usize {
            let sub = pset.without(p(drop));
            assert!(
                max_q_steps_in_p_free_interval(&s, sub, qset) > 20,
                "subset without p{drop} must starve"
            );
        }
    }

    #[test]
    fn all_processes_are_correct() {
        let mut g =
            GeneralizedFigure1::new(ProcSet::from_indices([0, 1]), ProcSet::from_indices([2, 3]));
        let s = g.take_schedule(10_000);
        // Everyone keeps appearing in the last quarter.
        let tail = s.suffix(7_500);
        assert_eq!(tail.participants(), ProcSet::from_indices([0, 1, 2, 3]));
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn overlapping_sets_rejected() {
        let _ = GeneralizedFigure1::new(ProcSet::from_indices([0, 1]), ProcSet::from_indices([1]));
    }
}
