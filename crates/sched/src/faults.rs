//! Fault-injection decorators: dynamic synchrony regimes as step sources.
//!
//! The conforming generators of this crate hold their timeliness shape for
//! the whole run. Real systems do not: links flap between timely and
//! untimely, processes slow down without crashing (gray failure), one
//! process monopolizes the network for a while, and crashed processes come
//! back. This module makes those regimes constructive and seeded:
//!
//! - [`FlappingTimely`] — the [`SetTimely`](crate::SetTimely) enforcement
//!   toggled on and off with seeded dwell times; it records the phase
//!   [`segments`](FlappingTimely::segments) so `validate` can certify each
//!   timely window after the fact.
//! - [`GrayFailure`] — designated processes stay live but only every
//!   `stretch`-th of their steps survives, with a seeded per-process phase.
//! - [`BurstClog`] — one process monopolizes the schedule for fixed-length
//!   windows separated by seeded gaps.
//! - [`CrashRecovery`] — a process takes no steps in `[crash, rejoin)` of
//!   the emitted schedule and then rejoins; unlike
//!   [`CrashAfter`](crate::CrashAfter) the process is *not* faulty.
//!
//! All four are deterministic given their parameters and a seed, which is
//! what lets scenario campaigns grid over them byte-identically across
//! worker counts.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use st_core::{ProcSet, ProcessId, StepSource};

/// The largest process index a [`ProcSet`] can hold; used to size the
/// per-process counters of [`GrayFailure`].
const MAX_PROCS: usize = 64;

fn draw(rng: &mut StdRng, (lo, hi): (u64, u64)) -> u64 {
    lo + rng.random_range(0..(hi - lo + 1))
}

/// One phase of a [`FlappingTimely`] run: emitted positions
/// `[start, end)` were produced with enforcement on (`enforcing`) or off.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PhaseSegment {
    /// First emitted position of the phase (inclusive).
    pub start: u64,
    /// One past the last emitted position of the phase.
    pub end: u64,
    /// Whether the timeliness bound was enforced during the phase.
    pub enforcing: bool,
}

/// `P` timely wrt `Q` — but only during seeded *timely dwells*, alternating
/// with untimely dwells in which the filler passes through unchecked.
///
/// Dwell lengths are drawn uniformly from inclusive ranges with a dedicated
/// RNG, so the flapping pattern is a pure function of the parameters and
/// the seed. Enforcement restarts its `Q`-run counter at every timely-phase
/// entry, so within each enforcing segment the emitted slice satisfies the
/// bound (certified by
/// [`validate::certify_flapping_segments`](crate::validate::certify_flapping_segments)).
pub struct FlappingTimely<S> {
    p: ProcSet,
    q: ProcSet,
    bound: usize,
    filler: S,
    timely_dwell: (u64, u64),
    untimely_dwell: (u64, u64),
    rng: StdRng,
    /// Whether the current phase enforces the bound.
    enforcing: bool,
    /// Emitted steps left in the current phase.
    remaining: u64,
    q_run: usize,
    next_inject: usize,
    pending: Option<ProcessId>,
    emitted: u64,
    segments: Vec<PhaseSegment>,
}

impl<S: StepSource> FlappingTimely<S> {
    /// Creates the generator; the first phase is timely.
    ///
    /// # Panics
    ///
    /// Panics if `p` is empty, `bound < 1` (bound 1 additionally requires
    /// `Q ⊆ P`, as in [`SetTimely`](crate::SetTimely)), or a dwell range is
    /// empty or contains 0.
    pub fn new(
        p: ProcSet,
        q: ProcSet,
        bound: usize,
        filler: S,
        timely_dwell: (u64, u64),
        untimely_dwell: (u64, u64),
        seed: u64,
    ) -> Self {
        assert!(!p.is_empty(), "P must be non-empty");
        assert!(bound >= 1, "bound must be positive");
        assert!(
            bound > 1 || q.is_subset(p),
            "bound 1 requires Q ⊆ P (every Q-step must be a P-step)"
        );
        for (lo, hi) in [timely_dwell, untimely_dwell] {
            assert!(
                lo >= 1 && lo <= hi,
                "dwell ranges must satisfy 1 <= lo <= hi"
            );
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let remaining = draw(&mut rng, timely_dwell);
        FlappingTimely {
            p,
            q,
            bound,
            filler,
            timely_dwell,
            untimely_dwell,
            rng,
            enforcing: true,
            remaining,
            q_run: 0,
            next_inject: 0,
            pending: None,
            emitted: 0,
            segments: vec![PhaseSegment {
                start: 0,
                end: 0,
                enforcing: true,
            }],
        }
    }

    /// The phase log over the emitted prefix so far, in order. The last
    /// segment's `end` equals the number of steps emitted.
    pub fn segments(&self) -> &[PhaseSegment] {
        &self.segments
    }

    fn toggle(&mut self) {
        self.enforcing = !self.enforcing;
        self.remaining = draw(
            &mut self.rng,
            if self.enforcing {
                self.timely_dwell
            } else {
                self.untimely_dwell
            },
        );
        if self.enforcing {
            // A fresh timely window: past Q-runs belong to the untimely phase.
            self.q_run = 0;
        }
        self.segments.push(PhaseSegment {
            start: self.emitted,
            end: self.emitted,
            enforcing: self.enforcing,
        });
    }
}

impl<S: StepSource> StepSource for FlappingTimely<S> {
    fn next_step(&mut self) -> Option<ProcessId> {
        if self.remaining == 0 {
            self.toggle();
        }
        let step = match self.pending.take() {
            Some(held) => held,
            None => self.filler.next_step()?,
        };
        let emit = if !self.enforcing {
            step
        } else if self.p.contains(step) {
            self.q_run = 0;
            step
        } else if self.q.contains(step) {
            if self.q_run + 1 >= self.bound {
                let members = self.p.to_vec();
                let injected = members[self.next_inject % members.len()];
                self.next_inject = (self.next_inject + 1) % members.len();
                self.pending = Some(step);
                self.q_run = 0;
                injected
            } else {
                self.q_run += 1;
                step
            }
        } else {
            step
        };
        self.remaining -= 1;
        self.emitted += 1;
        if let Some(last) = self.segments.last_mut() {
            last.end = self.emitted;
        }
        Some(emit)
    }
}

/// Gray failure: the `gray` processes are slow but live — only every
/// `stretch`-th of their inner steps is emitted, with a seeded per-process
/// phase offset. A stretch of 1 is the identity.
///
/// Gray processes keep taking infinitely many steps, so they are *correct*
/// in the model; the decorator only dilates their step rate, the way a
/// degraded-but-not-dead replica behaves.
pub struct GrayFailure<S> {
    inner: S,
    gray: ProcSet,
    stretch: u64,
    /// Per-process step counters, pre-seeded with a random phase.
    counters: Vec<u64>,
    /// Abort the scan after this many consecutive suppressed steps, to keep
    /// termination when the inner source only schedules gray processes that
    /// are off-phase (impossible for finite stretch, but cheap insurance).
    max_skips: u64,
}

impl<S: StepSource> GrayFailure<S> {
    /// Wraps `inner`; phases are drawn from `seed` in ascending member
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if `stretch < 1`.
    pub fn new(inner: S, gray: ProcSet, stretch: u64, seed: u64) -> Self {
        assert!(stretch >= 1, "stretch must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counters = vec![0u64; MAX_PROCS];
        for p in gray.iter() {
            counters[p.index()] = rng.random_range(0..stretch);
        }
        GrayFailure {
            inner,
            gray,
            stretch,
            counters,
            max_skips: 1_000_000,
        }
    }
}

impl<S: StepSource> StepSource for GrayFailure<S> {
    fn next_step(&mut self) -> Option<ProcessId> {
        for _ in 0..self.max_skips {
            let p = self.inner.next_step()?;
            if !self.gray.contains(p) {
                return Some(p);
            }
            let c = &mut self.counters[p.index()];
            *c += 1;
            if c.is_multiple_of(self.stretch) {
                return Some(p);
            }
        }
        None
    }
}

/// Burst clogging: `clogger` monopolizes the schedule for `window`
/// consecutive steps, between seeded pass-through gaps drawn from `gap`.
///
/// During a burst the inner source is paused, not consumed: the clogged
/// steps are *inserted*, so after the burst the inner schedule resumes
/// exactly where it left off.
pub struct BurstClog<S> {
    inner: S,
    clogger: ProcessId,
    window: u64,
    gap: (u64, u64),
    rng: StdRng,
    in_burst: bool,
    /// Steps left in the current burst or gap.
    remaining: u64,
}

impl<S: StepSource> BurstClog<S> {
    /// Wraps `inner`; the run starts with a gap.
    ///
    /// # Panics
    ///
    /// Panics if `window < 1` or the gap range is empty or contains 0.
    pub fn new(inner: S, clogger: ProcessId, window: u64, gap: (u64, u64), seed: u64) -> Self {
        assert!(window >= 1, "clog window must be positive");
        assert!(
            gap.0 >= 1 && gap.0 <= gap.1,
            "gap range must satisfy 1 <= lo <= hi"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let remaining = draw(&mut rng, gap);
        BurstClog {
            inner,
            clogger,
            window,
            gap,
            rng,
            in_burst: false,
            remaining,
        }
    }
}

impl<S: StepSource> StepSource for BurstClog<S> {
    fn next_step(&mut self) -> Option<ProcessId> {
        if self.remaining == 0 {
            self.in_burst = !self.in_burst;
            self.remaining = if self.in_burst {
                self.window
            } else {
                draw(&mut self.rng, self.gap)
            };
        }
        self.remaining -= 1;
        if self.in_burst {
            Some(self.clogger)
        } else {
            self.inner.next_step()
        }
    }
}

/// Crash-recovery: `victim` takes no steps at emitted positions in
/// `[crash, rejoin)` and then rejoins the schedule.
///
/// Because the outage window is finite the victim still takes infinitely
/// many steps, so — unlike under [`CrashAfter`](crate::CrashAfter) — it is
/// a *correct* process in the model's sense. The window is over emitted
/// positions of the output schedule, which is what
/// [`validate::certify_absence_window`](crate::validate::certify_absence_window)
/// re-checks after a run.
pub struct CrashRecovery<S> {
    inner: S,
    victim: ProcessId,
    crash: u64,
    rejoin: u64,
    emitted: u64,
    /// Abort the scan after this many consecutive suppressed steps, to keep
    /// termination when the inner source only schedules the victim.
    max_skips: u64,
}

impl<S: StepSource> CrashRecovery<S> {
    /// Wraps `inner` with the outage window `[crash, rejoin)`.
    ///
    /// # Panics
    ///
    /// Panics if `crash > rejoin`.
    pub fn new(inner: S, victim: ProcessId, crash: u64, rejoin: u64) -> Self {
        assert!(crash <= rejoin, "crash point must not exceed rejoin point");
        CrashRecovery {
            inner,
            victim,
            crash,
            rejoin,
            emitted: 0,
            max_skips: 1_000_000,
        }
    }
}

impl<S: StepSource> StepSource for CrashRecovery<S> {
    fn next_step(&mut self) -> Option<ProcessId> {
        for _ in 0..self.max_skips {
            let p = self.inner.next_step()?;
            if p == self.victim && self.emitted >= self.crash && self.emitted < self.rejoin {
                continue;
            }
            self.emitted += 1;
            return Some(p);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic::{RoundRobin, SeededRandom};
    use crate::set_timely::SetTimely;
    use st_core::timeliness::{empirical_bound, max_q_steps_in_p_free_interval};
    use st_core::{Schedule, ScheduleCursor, Universe};

    fn u(n: usize) -> Universe {
        Universe::new(n).unwrap()
    }

    fn set(ix: &[usize]) -> ProcSet {
        ProcSet::from_indices(ix.iter().copied())
    }

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn flapping_is_deterministic_per_seed() {
        let mk = |seed| {
            FlappingTimely::new(
                set(&[0, 1]),
                set(&[2, 3, 4]),
                3,
                SeededRandom::new(u(5), 9),
                (100, 300),
                (50, 150),
                seed,
            )
            .take_schedule(5_000)
        };
        assert_eq!(mk(7), mk(7));
        assert_ne!(mk(7), mk(8));
    }

    #[test]
    fn flapping_enforces_inside_timely_segments_only() {
        let p = set(&[0]);
        let q = set(&[1]);
        // Filler starves P entirely, so untimely segments show unbounded
        // Q-runs while every timely segment is clamped at the bound.
        let filler = ScheduleCursor::new(Schedule::from_indices(vec![1; 20_000]));
        let mut gen = FlappingTimely::new(p, q, 2, filler, (200, 400), (100, 200), 3);
        let s = gen.take_schedule(8_000);
        let segments: Vec<PhaseSegment> = gen.segments().to_vec();
        assert!(segments.len() > 4, "expected several phases");
        assert_eq!(segments.last().unwrap().end, s.len() as u64);
        let mut saw_untimely = false;
        for seg in &segments {
            let slice = s.prefix(seg.end as usize).suffix(seg.start as usize);
            if seg.enforcing {
                assert!(empirical_bound(&slice, p, q) <= 2);
            } else if slice.len() >= 100 {
                saw_untimely = true;
                assert!(max_q_steps_in_p_free_interval(&slice, p, q) > 2);
            }
        }
        assert!(saw_untimely, "expected a substantial untimely segment");
    }

    #[test]
    fn flapping_segments_tile_the_schedule() {
        let mut gen = FlappingTimely::new(
            set(&[0]),
            set(&[1, 2]),
            3,
            SeededRandom::new(u(3), 4),
            (10, 30),
            (5, 20),
            11,
        );
        let s = gen.take_schedule(1_000);
        let segs = gen.segments();
        assert_eq!(segs[0].start, 0);
        for w in segs.windows(2) {
            assert_eq!(w[0].end, w[1].start, "segments must tile");
            assert_ne!(w[0].enforcing, w[1].enforcing, "phases must alternate");
        }
        assert_eq!(segs.last().unwrap().end as usize, s.len());
    }

    #[test]
    fn gray_failure_thins_but_keeps_live() {
        let gray = set(&[2]);
        let mut gen = GrayFailure::new(RoundRobin::new(u(3)), gray, 4, 0);
        let s = gen.take_schedule(4_000);
        let grays = s.occurrences(pid(2));
        // Round-robin gives p2 every third inner step; stretch 4 keeps a
        // quarter of those.
        assert!(grays > 0, "gray process must stay live");
        assert!(
            grays * 3 < s.occurrences(pid(0)),
            "gray process must be thinned"
        );
        // Non-gray processes are untouched in relative order (up to where
        // the prefix cut lands in the round-robin cycle).
        assert!(s.occurrences(pid(0)).abs_diff(s.occurrences(pid(1))) <= 1);
    }

    #[test]
    fn gray_failure_stretch_one_is_identity() {
        let inner = SeededRandom::new(u(4), 5).take_schedule(2_000);
        let mut gen = GrayFailure::new(ScheduleCursor::new(inner.clone()), set(&[1, 3]), 1, 99);
        assert_eq!(gen.take_schedule(2_000), inner);
    }

    #[test]
    fn gray_failure_is_deterministic_per_seed() {
        let mk = |seed| {
            GrayFailure::new(SeededRandom::new(u(5), 3), set(&[1, 4]), 5, seed).take_schedule(3_000)
        };
        assert_eq!(mk(2), mk(2));
        assert_ne!(mk(2), mk(3));
    }

    #[test]
    fn burst_clog_inserts_bursts_and_resumes_inner() {
        let inner = RoundRobin::new(u(3));
        let mut gen = BurstClog::new(inner, pid(2), 8, (20, 40), 1);
        let s = gen.take_schedule(2_000);
        // A maximal run of the clogger at least `window` long exists.
        let mut best = 0usize;
        let mut run = 0usize;
        for p in s.iter() {
            if p == pid(2) {
                run += 1;
                best = best.max(run);
            } else {
                run = 0;
            }
        }
        assert!(best >= 8, "expected a full burst, saw max run {best}");
        // The inner schedule resumes where it left off: removing clogged
        // insertions leaves round-robin order. Round-robin emits p2 too, so
        // check the p0/p1 alternation instead.
        let others: Vec<ProcessId> = s.iter().filter(|&p| p != pid(2)).collect();
        for w in others.windows(2) {
            assert_ne!(w[0], w[1], "non-clogger steps must keep alternating");
        }
    }

    #[test]
    fn burst_clog_is_deterministic_per_seed() {
        let mk = |seed| {
            BurstClog::new(SeededRandom::new(u(4), 6), pid(0), 16, (30, 90), seed)
                .take_schedule(3_000)
        };
        assert_eq!(mk(4), mk(4));
        assert_ne!(mk(4), mk(5));
    }

    #[test]
    fn crash_recovery_window_is_exact() {
        let mut gen = CrashRecovery::new(RoundRobin::new(u(3)), pid(1), 10, 40);
        let s = gen.take_schedule(200);
        for (pos, p) in s.iter().enumerate() {
            if (10..40).contains(&pos) {
                assert_ne!(p, pid(1), "victim stepped at position {pos}");
            }
        }
        // The victim steps both before the crash and after the rejoin.
        assert!(s.prefix(10).occurrences(pid(1)) > 0);
        assert!(s.suffix(40).occurrences(pid(1)) > 0);
    }

    #[test]
    fn crash_recovery_empty_window_is_identity() {
        let inner = SeededRandom::new(u(3), 8).take_schedule(500);
        let mut gen = CrashRecovery::new(ScheduleCursor::new(inner.clone()), pid(0), 50, 50);
        assert_eq!(gen.take_schedule(500), inner);
    }

    #[test]
    fn crash_recovery_over_set_timely_keeps_victim_correct() {
        let p = set(&[0, 1]);
        let q = set(&[2, 3, 4]);
        let inner = SetTimely::new(p, q, 3, SeededRandom::new(u(5), 2));
        let mut gen = CrashRecovery::new(inner, pid(3), 500, 1_500);
        let s = gen.take_schedule(10_000);
        assert_eq!(
            s.prefix(1_500).suffix(500).occurrences(pid(3)),
            0,
            "victim must be silent in the window"
        );
        assert!(
            s.suffix(1_500).occurrences(pid(3)) > 0,
            "victim must rejoin"
        );
    }

    #[test]
    #[should_panic(expected = "crash point must not exceed rejoin")]
    fn crash_recovery_inverted_window_panics() {
        let _ = CrashRecovery::new(RoundRobin::new(u(2)), pid(0), 10, 5);
    }

    #[test]
    #[should_panic(expected = "dwell ranges")]
    fn flapping_zero_dwell_panics() {
        let _ = FlappingTimely::new(
            set(&[0]),
            set(&[1]),
            2,
            RoundRobin::new(u(2)),
            (0, 5),
            (1, 5),
            0,
        );
    }
}
