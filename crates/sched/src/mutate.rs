//! Spec mutation: deterministic generation and perturbation of
//! [`GeneratorSpec`] trees, the genetic half of the coverage-guided fuzzer
//! (`st-campaign::fuzz`).
//!
//! Both halves — [`SpecMutator::arbitrary`] (grow a fresh valid-by-
//! construction tree) and [`SpecMutator::mutate`] (perturb an existing one)
//! — draw from a [`SpecRng`], a self-contained SplitMix64 stream, so a
//! fuzz round is a pure function of `(corpus, master seed, round index)`
//! and the engine's byte-identical-across-workers contract extends to the
//! fuzzer for free. The generator doubles as the proptest strategy for the
//! store-codec round-trip tests: any tree it can emit, the codec must
//! round-trip.
//!
//! Every emitted tree satisfies the constructor preconditions
//! [`GeneratorSpec::build`] enforces (non-empty member sets, `bound ≥ 2`
//! so `q ⊆ p` is never required, ordered dwell/gap ranges with `lo ≥ 1`,
//! `stretch ≥ 1`, `window ≥ 1`, `crash ≤ rejoin`), and crash plans never
//! silence the whole universe. The mutation operators are the ones the
//! fuzzer issue card names: parameter nudges, member-set reseating (the
//! path to starvation counterexamples — restrict a filler's `over` set and
//! a correct process outside it never steps again), decorator
//! stacking/unstacking, crash-plan edits, and whole-subtree replacement.

use st_core::{ProcSet, ProcessId, Schedule, Universe};

use crate::crashes::CrashPlan;
use crate::spec::GeneratorSpec;

/// SplitMix64: a tiny deterministic RNG with no dependencies. Streams are
/// pure functions of the seed, which is all the fuzzer's determinism
/// contract needs.
#[derive(Clone, Debug)]
pub struct SpecRng {
    state: u64,
}

impl SpecRng {
    /// A stream seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        SpecRng { state: seed }
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A draw in `0..bound` (`bound > 0`; modulo bias is irrelevant here).
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "SpecRng::below(0)");
        self.next_u64() % bound
    }

    /// A draw in the inclusive range `lo..=hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "SpecRng::range lo > hi");
        lo + self.below(hi - lo + 1)
    }

    /// True with probability `num / den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

/// Caps stacked decorators so mutation doesn't grow unbounded towers.
const MAX_DECORATOR_DEPTH: usize = 3;

/// Generator and mutator of [`GeneratorSpec`] trees over a fixed universe.
#[derive(Clone, Copy, Debug)]
pub struct SpecMutator {
    universe: Universe,
}

impl SpecMutator {
    /// A mutator over `universe`.
    pub fn new(universe: Universe) -> Self {
        SpecMutator { universe }
    }

    fn n(&self) -> usize {
        self.universe.n()
    }

    fn pid(&self, rng: &mut SpecRng) -> ProcessId {
        ProcessId::new(rng.below(self.n() as u64) as usize)
    }

    fn nonempty_subset(&self, rng: &mut SpecRng) -> ProcSet {
        let bits = rng.below(1 << self.n());
        if bits == 0 {
            ProcSet::singleton(self.pid(rng))
        } else {
            ProcSet::from_bits(bits)
        }
    }

    /// An inclusive range with `1 <= lo <= hi <= max`.
    fn dwell(&self, rng: &mut SpecRng, max: u64) -> (u64, u64) {
        let lo = rng.range(1, max);
        let hi = rng.range(lo, max);
        (lo, hi)
    }

    /// A crash plan silencing 1 to `n − 1` processes at steps in
    /// `0..=4096`; never the whole universe.
    fn random_plan(&self, rng: &mut SpecRng) -> CrashPlan {
        let victims = rng.range(1, (self.n() - 1) as u64);
        let mut plan = CrashPlan::new();
        for _ in 0..victims {
            plan = plan.crash(self.pid(rng), rng.below(4097));
        }
        plan
    }

    /// A leaf spec: round-robin, seeded-random (full universe or a
    /// non-empty subset), or a short cycle.
    pub fn base(&self, rng: &mut SpecRng) -> GeneratorSpec {
        match rng.below(5) {
            0 => GeneratorSpec::RoundRobin { over: None },
            1 => GeneratorSpec::RoundRobin {
                over: Some(self.nonempty_subset(rng)),
            },
            2 => GeneratorSpec::SeededRandom {
                over: None,
                seed_offset: rng.below(1024),
                weights: None,
            },
            3 => GeneratorSpec::SeededRandom {
                over: Some(self.nonempty_subset(rng)),
                seed_offset: rng.below(1024),
                weights: None,
            },
            _ => {
                let len = rng.range(1, 8);
                let steps = (0..len).map(|_| self.pid(rng).index());
                GeneratorSpec::Cycle {
                    period: Schedule::from_indices(steps),
                }
            }
        }
    }

    /// An arbitrary valid spec tree of decorator depth at most `depth`.
    /// Only the data-driven families appear (the literal paper
    /// constructions — Figure 1, rotations, fictitious crashes — have their
    /// own harnesses and nothing to fuzz).
    pub fn arbitrary(&self, rng: &mut SpecRng, depth: usize) -> GeneratorSpec {
        if depth == 0 {
            return self.base(rng);
        }
        match rng.below(8) {
            0 => self.base(rng),
            1 => GeneratorSpec::SetTimely {
                p: self.nonempty_subset(rng),
                q: self.nonempty_subset(rng),
                bound: rng.range(2, 8) as usize,
                filler: Box::new(self.arbitrary(rng, depth - 1)),
                crashes: CrashPlan::new(),
            },
            2 => GeneratorSpec::Eventually {
                prefix: Box::new(self.base(rng)),
                prefix_len: rng.range(1, 64),
                body: Box::new(self.arbitrary(rng, depth - 1)),
            },
            3 => GeneratorSpec::Flapping {
                p: self.nonempty_subset(rng),
                q: self.nonempty_subset(rng),
                bound: rng.range(2, 8) as usize,
                filler: Box::new(self.arbitrary(rng, depth - 1)),
                timely_dwell: self.dwell(rng, 128),
                untimely_dwell: self.dwell(rng, 128),
                seed_offset: rng.below(1024),
            },
            4 => GeneratorSpec::GrayFailure {
                inner: Box::new(self.arbitrary(rng, depth - 1)),
                gray: self.nonempty_subset(rng),
                stretch: rng.range(1, 12),
                seed_offset: rng.below(1024),
            },
            5 => GeneratorSpec::BurstClog {
                inner: Box::new(self.arbitrary(rng, depth - 1)),
                clogger: self.pid(rng),
                window: rng.range(1, 64),
                gap: self.dwell(rng, 128),
                seed_offset: rng.below(1024),
            },
            6 => {
                let crash = rng.below(4097);
                GeneratorSpec::CrashRecovery {
                    inner: Box::new(self.arbitrary(rng, depth - 1)),
                    victim: self.pid(rng),
                    crash,
                    rejoin: crash + rng.below(4097),
                }
            }
            _ => GeneratorSpec::CrashAfter {
                inner: Box::new(self.arbitrary(rng, depth - 1)),
                plan: self.random_plan(rng),
            },
        }
    }

    /// One mutation step: a perturbed clone of `spec` that still satisfies
    /// every constructor precondition.
    pub fn mutate(&self, spec: &GeneratorSpec, rng: &mut SpecRng) -> GeneratorSpec {
        match rng.below(6) {
            0 if decorator_depth(spec) < MAX_DECORATOR_DEPTH => self.stack(spec, rng),
            1 => match unstack(spec) {
                Some(inner) => inner,
                None => self.nudge(spec, rng),
            },
            2 => self.reseat_sets(spec, rng),
            3 => self.edit_crash_plan(spec, rng),
            4 => self.arbitrary(rng, 2),
            _ => self.nudge(spec, rng),
        }
    }

    /// Wraps `spec` in one of the PR-6 fault decorators (or a crash plan).
    fn stack(&self, spec: &GeneratorSpec, rng: &mut SpecRng) -> GeneratorSpec {
        let inner = Box::new(spec.clone());
        match rng.below(5) {
            0 => GeneratorSpec::Flapping {
                p: self.nonempty_subset(rng),
                q: self.nonempty_subset(rng),
                bound: rng.range(2, 8) as usize,
                filler: inner,
                timely_dwell: self.dwell(rng, 128),
                untimely_dwell: self.dwell(rng, 128),
                seed_offset: rng.below(1024),
            },
            1 => GeneratorSpec::GrayFailure {
                inner,
                gray: self.nonempty_subset(rng),
                stretch: rng.range(1, 12),
                seed_offset: rng.below(1024),
            },
            2 => GeneratorSpec::BurstClog {
                inner,
                clogger: self.pid(rng),
                window: rng.range(1, 64),
                gap: self.dwell(rng, 128),
                seed_offset: rng.below(1024),
            },
            3 => {
                let crash = rng.below(4097);
                GeneratorSpec::CrashRecovery {
                    inner,
                    victim: self.pid(rng),
                    crash,
                    rejoin: crash + rng.below(4097),
                }
            }
            _ => GeneratorSpec::CrashAfter {
                inner,
                plan: self.random_plan(rng),
            },
        }
    }

    /// Randomizes one member set somewhere in the tree — the mutation that
    /// reaches starvation counterexamples (restrict a filler's `over` set
    /// and every correct process outside it is starved forever).
    fn reseat_sets(&self, spec: &GeneratorSpec, rng: &mut SpecRng) -> GeneratorSpec {
        match spec {
            GeneratorSpec::RoundRobin { .. } => GeneratorSpec::RoundRobin {
                over: Some(self.nonempty_subset(rng)),
            },
            GeneratorSpec::SeededRandom {
                seed_offset,
                weights,
                ..
            } => GeneratorSpec::SeededRandom {
                over: Some(self.nonempty_subset(rng)),
                seed_offset: *seed_offset,
                // Weights are per-member; a reseated set invalidates them.
                weights: if weights.is_some() {
                    None
                } else {
                    weights.clone()
                },
            },
            GeneratorSpec::SetTimely {
                p,
                q,
                bound,
                filler,
                crashes,
            } => {
                if rng.chance(1, 2) {
                    GeneratorSpec::SetTimely {
                        p: self.nonempty_subset(rng),
                        q: self.nonempty_subset(rng),
                        bound: *bound,
                        filler: filler.clone(),
                        crashes: crashes.clone(),
                    }
                } else {
                    GeneratorSpec::SetTimely {
                        p: *p,
                        q: *q,
                        bound: *bound,
                        filler: Box::new(self.reseat_sets(filler, rng)),
                        crashes: crashes.clone(),
                    }
                }
            }
            GeneratorSpec::Flapping {
                p,
                q,
                bound,
                filler,
                timely_dwell,
                untimely_dwell,
                seed_offset,
            } => {
                let (p, q, filler) = if rng.chance(1, 2) {
                    (
                        self.nonempty_subset(rng),
                        self.nonempty_subset(rng),
                        filler.clone(),
                    )
                } else {
                    (*p, *q, Box::new(self.reseat_sets(filler, rng)))
                };
                GeneratorSpec::Flapping {
                    p,
                    q,
                    bound: *bound,
                    filler,
                    timely_dwell: *timely_dwell,
                    untimely_dwell: *untimely_dwell,
                    seed_offset: *seed_offset,
                }
            }
            GeneratorSpec::GrayFailure {
                inner,
                gray,
                stretch,
                seed_offset,
            } => {
                let (inner, gray) = if rng.chance(1, 2) {
                    (inner.clone(), self.nonempty_subset(rng))
                } else {
                    (Box::new(self.reseat_sets(inner, rng)), *gray)
                };
                GeneratorSpec::GrayFailure {
                    inner,
                    gray,
                    stretch: *stretch,
                    seed_offset: *seed_offset,
                }
            }
            GeneratorSpec::Eventually {
                prefix,
                prefix_len,
                body,
            } => GeneratorSpec::Eventually {
                prefix: prefix.clone(),
                prefix_len: *prefix_len,
                body: Box::new(self.reseat_sets(body, rng)),
            },
            GeneratorSpec::BurstClog {
                inner,
                clogger,
                window,
                gap,
                seed_offset,
            } => GeneratorSpec::BurstClog {
                inner: Box::new(self.reseat_sets(inner, rng)),
                clogger: *clogger,
                window: *window,
                gap: *gap,
                seed_offset: *seed_offset,
            },
            GeneratorSpec::CrashRecovery {
                inner,
                victim,
                crash,
                rejoin,
            } => GeneratorSpec::CrashRecovery {
                inner: Box::new(self.reseat_sets(inner, rng)),
                victim: *victim,
                crash: *crash,
                rejoin: *rejoin,
            },
            GeneratorSpec::CrashAfter { inner, plan } => GeneratorSpec::CrashAfter {
                inner: Box::new(self.reseat_sets(inner, rng)),
                plan: plan.clone(),
            },
            // Cycles, the literal paper constructions, and replays carry no
            // free member set to reseat.
            other => other.clone(),
        }
    }

    /// Edits the crash plan of a root `CrashAfter` (add / remove / move a
    /// victim, keeping at least one process alive) or wraps a plan-less
    /// spec in a fresh one.
    fn edit_crash_plan(&self, spec: &GeneratorSpec, rng: &mut SpecRng) -> GeneratorSpec {
        match spec {
            GeneratorSpec::CrashAfter { inner, plan } => {
                let entries: Vec<(ProcessId, u64)> = plan.entries().collect();
                let plan = match rng.below(3) {
                    // Add a victim, unless that would silence everyone.
                    0 if entries.len() < self.n() - 1 => {
                        plan.clone().crash(self.pid(rng), rng.below(4097))
                    }
                    // Remove one.
                    1 if !entries.is_empty() => {
                        let drop = rng.below(entries.len() as u64) as usize;
                        entries
                            .iter()
                            .enumerate()
                            .filter(|(i, _)| *i != drop)
                            .fold(CrashPlan::new(), |acc, (_, &(p, s))| acc.crash(p, s))
                    }
                    // Move one's crash step.
                    _ if !entries.is_empty() => {
                        let moved = rng.below(entries.len() as u64) as usize;
                        let step = rng.below(4097);
                        entries
                            .iter()
                            .enumerate()
                            .fold(CrashPlan::new(), |acc, (i, &(p, s))| {
                                acc.crash(p, if i == moved { step } else { s })
                            })
                    }
                    _ => plan.clone(),
                };
                if plan.is_empty() {
                    (**inner).clone()
                } else {
                    GeneratorSpec::CrashAfter {
                        inner: inner.clone(),
                        plan,
                    }
                }
            }
            other => GeneratorSpec::CrashAfter {
                inner: Box::new(other.clone()),
                plan: self.random_plan(rng),
            },
        }
    }

    /// Nudges one numeric parameter somewhere in the tree, preserving every
    /// constructor precondition. Parameterless nodes recurse or return a
    /// clone.
    fn nudge(&self, spec: &GeneratorSpec, rng: &mut SpecRng) -> GeneratorSpec {
        match spec {
            GeneratorSpec::SeededRandom { over, weights, .. } => GeneratorSpec::SeededRandom {
                over: *over,
                seed_offset: rng.below(1024),
                weights: weights.clone(),
            },
            GeneratorSpec::SetTimely {
                p,
                q,
                bound,
                filler,
                crashes,
            } => {
                if rng.chance(1, 2) {
                    GeneratorSpec::SetTimely {
                        p: *p,
                        q: *q,
                        bound: nudge_usize(*bound, 2, 64, rng),
                        filler: filler.clone(),
                        crashes: crashes.clone(),
                    }
                } else {
                    GeneratorSpec::SetTimely {
                        p: *p,
                        q: *q,
                        bound: *bound,
                        filler: Box::new(self.nudge(filler, rng)),
                        crashes: crashes.clone(),
                    }
                }
            }
            GeneratorSpec::Eventually {
                prefix,
                prefix_len,
                body,
            } => GeneratorSpec::Eventually {
                prefix: prefix.clone(),
                prefix_len: nudge_u64(*prefix_len, 1, 8192, rng),
                body: body.clone(),
            },
            GeneratorSpec::Flapping {
                p,
                q,
                bound,
                filler,
                timely_dwell,
                untimely_dwell,
                seed_offset,
            } => {
                let (timely_dwell, untimely_dwell) = if rng.chance(1, 2) {
                    (nudge_range(*timely_dwell, rng), *untimely_dwell)
                } else {
                    (*timely_dwell, nudge_range(*untimely_dwell, rng))
                };
                GeneratorSpec::Flapping {
                    p: *p,
                    q: *q,
                    bound: nudge_usize(*bound, 2, 64, rng),
                    filler: filler.clone(),
                    timely_dwell,
                    untimely_dwell,
                    seed_offset: *seed_offset,
                }
            }
            GeneratorSpec::GrayFailure {
                inner,
                gray,
                stretch,
                seed_offset,
            } => GeneratorSpec::GrayFailure {
                inner: inner.clone(),
                gray: *gray,
                stretch: nudge_u64(*stretch, 1, 32, rng),
                seed_offset: *seed_offset,
            },
            GeneratorSpec::BurstClog {
                inner,
                clogger,
                window,
                gap,
                seed_offset,
            } => GeneratorSpec::BurstClog {
                inner: inner.clone(),
                clogger: *clogger,
                window: nudge_u64(*window, 1, 256, rng),
                gap: nudge_range(*gap, rng),
                seed_offset: *seed_offset,
            },
            GeneratorSpec::CrashRecovery {
                inner,
                victim,
                crash,
                rejoin,
            } => {
                // Shift the window or resize the outage, keeping crash ≤ rejoin.
                let span = rejoin - crash;
                let (crash, span) = if rng.chance(1, 2) {
                    (nudge_u64(*crash, 0, 8192, rng), span)
                } else {
                    (*crash, nudge_u64(span, 0, 8192, rng))
                };
                GeneratorSpec::CrashRecovery {
                    inner: inner.clone(),
                    victim: *victim,
                    crash,
                    rejoin: crash + span,
                }
            }
            GeneratorSpec::CrashAfter { inner, plan } => GeneratorSpec::CrashAfter {
                inner: Box::new(self.nudge(inner, rng)),
                plan: plan.clone(),
            },
            // RoundRobin, cycles, replays, and the literal paper
            // constructions have no free numeric knob worth nudging.
            other => other.clone(),
        }
    }
}

/// Doubles, halves, or steps `v`, clamped to `lo..=hi`.
fn nudge_u64(v: u64, lo: u64, hi: u64, rng: &mut SpecRng) -> u64 {
    let nudged = match rng.below(4) {
        0 => v.saturating_mul(2),
        1 => v / 2,
        2 => v.saturating_add(1),
        _ => v.saturating_sub(1),
    };
    nudged.clamp(lo, hi)
}

fn nudge_usize(v: usize, lo: u64, hi: u64, rng: &mut SpecRng) -> usize {
    nudge_u64(v as u64, lo, hi, rng) as usize
}

/// Nudges an inclusive `(lo, hi)` range keeping `1 <= lo <= hi`.
fn nudge_range((lo, hi): (u64, u64), rng: &mut SpecRng) -> (u64, u64) {
    let lo = nudge_u64(lo, 1, 4096, rng);
    let hi = nudge_u64(hi, 1, 4096, rng).max(lo);
    (lo, hi)
}

/// Stacked decorator layers above the first non-decorator node.
fn decorator_depth(spec: &GeneratorSpec) -> usize {
    match spec {
        GeneratorSpec::GrayFailure { inner, .. }
        | GeneratorSpec::BurstClog { inner, .. }
        | GeneratorSpec::CrashRecovery { inner, .. }
        | GeneratorSpec::CrashAfter { inner, .. } => 1 + decorator_depth(inner),
        GeneratorSpec::Flapping { filler, .. } => 1 + decorator_depth(filler),
        _ => 0,
    }
}

/// Strips the outermost wrapper, if any (the decorator-unstacking
/// mutation; also used by the shrinker's drop-a-layer pass).
pub fn unstack(spec: &GeneratorSpec) -> Option<GeneratorSpec> {
    match spec {
        GeneratorSpec::GrayFailure { inner, .. }
        | GeneratorSpec::BurstClog { inner, .. }
        | GeneratorSpec::CrashRecovery { inner, .. }
        | GeneratorSpec::CrashAfter { inner, .. } => Some((**inner).clone()),
        GeneratorSpec::Flapping { filler, .. } => Some((**filler).clone()),
        GeneratorSpec::Eventually { body, .. } => Some((**body).clone()),
        GeneratorSpec::SetTimely { filler, .. } => Some((**filler).clone()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_core::StepSource;

    fn u(n: usize) -> Universe {
        Universe::new(n).unwrap()
    }

    /// Every arbitrary tree builds (constructor preconditions hold) and
    /// emits a schedule.
    #[test]
    fn arbitrary_trees_build_and_emit() {
        let m = SpecMutator::new(u(5));
        let mut rng = SpecRng::new(0xF00D);
        for _ in 0..200 {
            let spec = m.arbitrary(&mut rng, 3);
            let s = spec.build(u(5), 42).take_schedule(256);
            // Crash-heavy trees can end early, but something always runs
            // unless every emitter is crashed at step 0 — allow empty, just
            // don't panic.
            assert!(s.len() <= 256);
        }
    }

    /// Mutation chains stay valid and deterministic: the same seed yields
    /// the same chain.
    #[test]
    fn mutation_chains_are_valid_and_deterministic() {
        let m = SpecMutator::new(u(5));
        let start = GeneratorSpec::set_timely(
            ProcSet::from_indices([0, 1]),
            ProcSet::from_indices([0, 1, 2]),
            6,
            GeneratorSpec::seeded_random(0),
        );
        let chain = |seed: u64| {
            let mut rng = SpecRng::new(seed);
            let mut spec = start.clone();
            let mut out = Vec::new();
            for _ in 0..100 {
                spec = m.mutate(&spec, &mut rng);
                spec.build(u(5), 7).take_schedule(64);
                out.push(spec.clone());
            }
            out
        };
        assert_eq!(chain(99), chain(99));
        assert_ne!(chain(99), chain(100));
    }

    /// Decorator stacking is capped, and unstack inverts stack.
    #[test]
    fn stacking_is_capped_and_unstack_strips() {
        let m = SpecMutator::new(u(4));
        let mut rng = SpecRng::new(1);
        let mut spec = GeneratorSpec::round_robin();
        for _ in 0..500 {
            spec = m.mutate(&spec, &mut rng);
            assert!(decorator_depth(&spec) <= MAX_DECORATOR_DEPTH + 1);
        }
        let wrapped = GeneratorSpec::gray_failure(
            GeneratorSpec::round_robin(),
            ProcSet::from_indices([1]),
            3,
        );
        assert_eq!(unstack(&wrapped), Some(GeneratorSpec::round_robin()));
        assert_eq!(unstack(&GeneratorSpec::round_robin()), None);
    }

    /// No single emitted crash plan silences the whole universe (stacked
    /// plans may union wider, but each layer leaves a survivor).
    #[test]
    fn crash_plans_leave_a_survivor() {
        fn check_plans(spec: &GeneratorSpec, n: usize) {
            match spec {
                GeneratorSpec::CrashAfter { inner, plan } => {
                    assert!(plan.faulty().len() < n, "plan silences everyone");
                    check_plans(inner, n);
                }
                GeneratorSpec::SetTimely { filler, .. }
                | GeneratorSpec::Flapping { filler, .. } => check_plans(filler, n),
                GeneratorSpec::GrayFailure { inner, .. }
                | GeneratorSpec::BurstClog { inner, .. }
                | GeneratorSpec::CrashRecovery { inner, .. } => check_plans(inner, n),
                GeneratorSpec::Eventually { prefix, body, .. } => {
                    check_plans(prefix, n);
                    check_plans(body, n);
                }
                _ => {}
            }
        }
        let m = SpecMutator::new(u(3));
        let mut rng = SpecRng::new(7);
        let mut spec = GeneratorSpec::round_robin();
        for _ in 0..300 {
            spec = m.mutate(&spec, &mut rng);
            check_plans(&spec, 3);
        }
    }
}
