//! Conforming generators: schedules guaranteed to lie in `S^i_{j,n}`.
//!
//! [`SetTimely`] wraps an arbitrary (typically adversarial) *filler* source
//! and enforces, by construction, that the designated set `P` is timely with
//! respect to `Q` with a chosen bound: whenever the filler has produced
//! `bound − 1` consecutive `Q`-steps without a `P`-step, a `P`-step is
//! injected before the next `Q`-step is let through. Everything else the
//! filler does — starvation of other sets, bursts, crashes via
//! [`CrashAfter`](crate::CrashAfter) — passes through untouched, so the
//! output is "as adversarial as possible subject to membership in
//! `S^{|P|}_{|Q|,n}`".

use st_core::{ProcSet, ProcessId, StepSource, TimelyPair};

use crate::crashes::CrashPlan;

/// Enforces `P` timely wrt `Q` (with an explicit bound) over a filler source.
///
/// # Examples
///
/// ```
/// use st_core::{ProcSet, Universe, StepSource, timeliness::empirical_bound};
/// use st_sched::{SeededRandom, SetTimely};
///
/// let u = Universe::new(5).unwrap();
/// let p = ProcSet::from_indices([0, 1]);
/// let q = ProcSet::from_indices([2, 3, 4]);
/// let filler = SeededRandom::new(u, 99);
/// let mut gen = SetTimely::new(p, q, 4, filler);
/// let s = gen.take_schedule(10_000);
/// assert!(empirical_bound(&s, p, q) <= 4);
/// ```
pub struct SetTimely<S> {
    p: ProcSet,
    q: ProcSet,
    bound: usize,
    filler: S,
    /// Q-steps seen since the last P-step.
    q_run: usize,
    /// Which member of P to inject next (rotates).
    next_inject: usize,
    /// A filler step held back while an injection happens.
    pending: Option<ProcessId>,
    /// Crash plan consulted when choosing an injectable P member.
    plan: CrashPlan,
    /// Global emitted-step counter (for crash-plan queries).
    emitted: u64,
}

impl<S: StepSource> SetTimely<S> {
    /// Creates the generator: `p` will be timely wrt `q` with `bound` in the
    /// output.
    ///
    /// # Panics
    ///
    /// Panics if `p` is empty or `bound < 1`. A bound of 1 requires
    /// `Q ⊆ P` (otherwise any let-through `Q`-step already violates it);
    /// this is checked too.
    pub fn new(p: ProcSet, q: ProcSet, bound: usize, filler: S) -> Self {
        assert!(!p.is_empty(), "P must be non-empty");
        assert!(bound >= 1, "bound must be positive");
        assert!(
            bound > 1 || q.is_subset(p),
            "bound 1 requires Q ⊆ P (every Q-step must be a P-step)"
        );
        SetTimely {
            p,
            q,
            bound,
            filler,
            q_run: 0,
            next_inject: 0,
            pending: None,
            plan: CrashPlan::new(),
            emitted: 0,
        }
    }

    /// Registers a crash plan so injected `P`-steps only use still-live
    /// members. At least one member of `P` must outlive the run for the
    /// guarantee to stay meaningful; injections stop silently once every
    /// member is crashed (the caller has then left `S^{|P|}_{|Q|,n}`
    /// deliberately).
    pub fn with_crashes(mut self, plan: CrashPlan) -> Self {
        self.plan = plan;
        self
    }

    /// The timeliness guarantee as a [`TimelyPair`].
    pub fn guarantee(&self) -> TimelyPair {
        TimelyPair {
            p: self.p,
            q: self.q,
            bound: self.bound,
        }
    }

    fn live_injectable(&mut self) -> Option<ProcessId> {
        let members: Vec<ProcessId> = self.p.to_vec();
        for offset in 0..members.len() {
            let candidate = members[(self.next_inject + offset) % members.len()];
            if !self.plan.is_crashed(candidate, self.emitted) {
                self.next_inject = (self.next_inject + offset + 1) % members.len();
                return Some(candidate);
            }
        }
        None
    }
}

impl<S: StepSource> StepSource for SetTimely<S> {
    fn next_step(&mut self) -> Option<ProcessId> {
        let step = match self.pending.take() {
            Some(held) => held,
            None => self.filler.next_step()?,
        };

        let emit = if self.p.contains(step) {
            self.q_run = 0;
            step
        } else if self.q.contains(step) {
            if self.q_run + 1 >= self.bound {
                // Letting this Q-step through would complete a run of
                // `bound` Q-steps with no P-step: inject P first.
                match self.live_injectable() {
                    Some(injected) => {
                        self.pending = Some(step);
                        self.q_run = 0;
                        injected
                    }
                    None => step, // all of P crashed: guarantee void
                }
            } else {
                self.q_run += 1;
                step
            }
        } else {
            step
        };
        self.emitted += 1;
        Some(emit)
    }
}

/// Prepends an arbitrary finite prefix to a source: the "eventually"
/// decorator.
///
/// Definition 1 absorbs any finite prefix into the bound, so
/// `Eventually::new(chaos_prefix, SetTimely::…)` still produces schedules of
/// `S^i_{j,n}` — with a larger (but finite) bound. This is how the
/// experiments model synchrony that only holds after an unknown
/// stabilization time, as in classic partial synchrony.
pub struct Eventually<A, B> {
    prefix: A,
    prefix_left: u64,
    body: B,
}

impl<A: StepSource, B: StepSource> Eventually<A, B> {
    /// Runs `prefix` for `prefix_len` steps, then switches to `body`.
    pub fn new(prefix: A, prefix_len: u64, body: B) -> Self {
        Eventually {
            prefix,
            prefix_left: prefix_len,
            body,
        }
    }
}

impl<A: StepSource, B: StepSource> StepSource for Eventually<A, B> {
    fn next_step(&mut self) -> Option<ProcessId> {
        while self.prefix_left > 0 {
            self.prefix_left -= 1;
            match self.prefix.next_step() {
                Some(p) => return Some(p),
                None => self.prefix_left = 0,
            }
        }
        self.body.next_step()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic::{RoundRobin, SeededRandom};
    use st_core::timeliness::{empirical_bound, max_q_steps_in_p_free_interval};
    use st_core::{Schedule, ScheduleCursor, Universe};

    fn u(n: usize) -> Universe {
        Universe::new(n).unwrap()
    }

    fn set(ix: &[usize]) -> ProcSet {
        ProcSet::from_indices(ix.iter().copied())
    }

    #[test]
    fn bound_enforced_over_random_filler() {
        for seed in 0..10u64 {
            let p = set(&[1, 4]);
            let q = set(&[0, 2, 3]);
            let mut gen = SetTimely::new(p, q, 3, SeededRandom::new(u(5), seed));
            let s = gen.take_schedule(20_000);
            assert!(
                empirical_bound(&s, p, q) <= 3,
                "seed {seed} violated the bound"
            );
        }
    }

    #[test]
    fn bound_enforced_over_hostile_filler() {
        // Filler tries to starve P completely: only Q steps.
        let p = set(&[0]);
        let q = set(&[1]);
        let filler = ScheduleCursor::new(Schedule::from_indices(vec![1; 1000]));
        let mut gen = SetTimely::new(p, q, 2, filler);
        let s = gen.take_schedule(5000);
        assert!(empirical_bound(&s, p, q) <= 2);
        // Roughly every other step is the injected p0.
        assert!(s.occurrences(ProcessId::new(0)) >= s.len() / 3);
    }

    #[test]
    fn non_pq_processes_flow_through() {
        let p = set(&[0]);
        let q = set(&[1]);
        // p2 is neither: its steps never trigger or reset injections.
        let filler = ScheduleCursor::new(Schedule::from_indices([2, 2, 2, 1, 2, 2, 1]));
        let mut gen = SetTimely::new(p, q, 2, filler);
        let s = gen.take_schedule(100);
        // The second q-step (p1) forces an injection before it.
        assert_eq!(s.occurrences(ProcessId::new(0)), 1);
        assert_eq!(s.occurrences(ProcessId::new(2)), 5);
    }

    #[test]
    fn injection_rotates_members() {
        let p = set(&[0, 1]);
        let q = set(&[2]);
        let filler = ScheduleCursor::new(Schedule::from_indices(vec![2; 100]));
        let mut gen = SetTimely::new(p, q, 2, filler);
        let s = gen.take_schedule(200);
        // Injections alternate p0, p1, p0, p1…
        assert!(s.occurrences(ProcessId::new(0)) > 20);
        assert!(s.occurrences(ProcessId::new(1)) > 20);
    }

    #[test]
    fn crash_plan_redirects_injections() {
        let p = set(&[0, 1]);
        let q = set(&[2]);
        let filler = ScheduleCursor::new(Schedule::from_indices(vec![2; 1000]));
        let plan = CrashPlan::new().crash(ProcessId::new(0), 10);
        let mut gen = SetTimely::new(p, q, 2, filler).with_crashes(plan);
        let s = gen.take_schedule(2000);
        // After step 10 only p1 is injected; the guarantee still holds.
        assert!(empirical_bound(&s, p, q) <= 2);
        let tail = s.suffix(50);
        assert_eq!(tail.occurrences(ProcessId::new(0)), 0);
        assert!(tail.occurrences(ProcessId::new(1)) > 0);
    }

    #[test]
    fn guarantee_reports_the_pair() {
        let gen = SetTimely::new(set(&[0]), set(&[1]), 5, RoundRobin::new(u(2)));
        let g = gen.guarantee();
        assert_eq!(g.p, set(&[0]));
        assert_eq!(g.q, set(&[1]));
        assert_eq!(g.bound, 5);
    }

    #[test]
    fn eventually_absorbs_chaotic_prefix() {
        let p = set(&[0]);
        let q = set(&[1]);
        // 200 steps of pure starvation, then enforced timeliness.
        let chaos = ScheduleCursor::new(Schedule::from_indices(vec![1; 200]));
        let body = SetTimely::new(p, q, 2, SeededRandom::new(u(2), 5));
        let mut gen = Eventually::new(chaos, 200, body);
        let s = gen.take_schedule(10_000);
        // Not bound-2 timely overall…
        assert!(max_q_steps_in_p_free_interval(&s, p, q) >= 200);
        // …but the bound is finite (absorbed prefix), and the suffix is clean.
        assert!(empirical_bound(&s.suffix(200), p, q) <= 2);
    }

    #[test]
    #[should_panic(expected = "bound 1 requires")]
    fn bound_one_needs_subset() {
        let _ = SetTimely::new(set(&[0]), set(&[1]), 1, RoundRobin::new(u(2)));
    }
}
