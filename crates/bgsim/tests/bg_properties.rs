//! Property tests for the BG substrate: safe agreement's defining
//! properties and the simulation's lockstep/validity invariants under
//! arbitrary host schedules and crash plans.

use proptest::prelude::*;
use st_bgsim::{run_reduction, FloodMin, Resolution, SafeAgreement, TrivialKDecide};
use st_core::{ProcSet, ProcessId, Schedule, ScheduleCursor, Universe, Value};
use st_sched::{CrashAfter, CrashPlan, SeededRandom};
use st_sim::{RunConfig, Sim, StopWhen};

prop_compose! {
    fn arb_schedule(n: usize)(steps in prop::collection::vec(0..n, 100..2_000)) -> Schedule {
        Schedule::from_indices(steps)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Safe agreement: all deciders agree on a proposed value, under any
    /// interleaving.
    #[test]
    fn safe_agreement_agreement_validity(sched in arb_schedule(3)) {
        let width = 3;
        let u = Universe::new(width).unwrap();
        let mut sim = Sim::new(u);
        let sa = SafeAgreement::alloc(&mut sim, "sa", width);
        for p in u.processes() {
            let sa = sa.clone();
            let v = 10 + p.index() as Value;
            sim.spawn(p, move |ctx| async move {
                sa.propose(&ctx, v).await;
                loop {
                    if let Resolution::Agreed(w) = sa.try_resolve(&ctx).await {
                        ctx.decide(w);
                        return;
                    }
                }
            }).unwrap();
        }
        let len = sched.len() as u64;
        let mut src = ScheduleCursor::new(sched);
        sim.run(&mut src, RunConfig::steps(len).stop_when(StopWhen::AllDecided(ProcSet::full(u)))).unwrap();
        let decided: Vec<Value> = sim.report().decisions.iter().flatten().map(|d| d.value).collect();
        if let Some(&first) = decided.first() {
            prop_assert!(decided.iter().all(|&v| v == first));
            prop_assert!((10..13).contains(&first));
        }
    }

    /// Reduction with crashes: Property (i) — stalled simulated processes
    /// never exceed crashed simulators; simulator adoptions stay within the
    /// simulated decision set.
    #[test]
    fn reduction_property_i(seed in 0u64..5_000, k in 1usize..=2, crash_step in 0u64..5_000) {
        let n_sim = 4;
        let machines: Vec<TrivialKDecide> =
            (0..n_sim).map(|u| TrivialKDecide::new(u, k, 200 + u as Value)).collect();
        let host = Universe::new(k + 1).unwrap();
        let plan = CrashPlan::new().crash(ProcessId::new(0), crash_step);
        let mut src = CrashAfter::new(SeededRandom::new(host, seed), plan);
        let report = run_reduction(k + 1, machines, 64, &mut src, 400_000);
        prop_assert!(report.stalled_simulated().len() <= 1,
            "stalled {} with 1 crash", report.stalled_simulated());
        let simulated: Vec<Value> = report.simulated_decisions.iter().flatten().copied().collect();
        for d in report.simulator_decisions.iter().flatten() {
            prop_assert!(simulated.contains(d));
        }
        prop_assert!(report.distinct_simulator_values() <= k);
    }

    /// Lockstep: every simulator's linearization of one simulated process's
    /// steps is a prefix of the longest one (copies never diverge).
    #[test]
    fn simulators_stay_in_lockstep(seed in 0u64..5_000) {
        let k = 1;
        let n_sim = 3;
        let machines: Vec<FloodMin> =
            (0..n_sim).map(|u| FloodMin::new(n_sim, 30 + u as Value)).collect();
        let host = Universe::new(k + 1).unwrap();
        let mut src = SeededRandom::new(host, seed);
        let report = run_reduction(k + 1, machines, 64, &mut src, 400_000);
        // Per simulated process, both simulators' step sequences (restricted
        // to that process) have lengths within the machine's program length
        // and the shorter is a prefix count-wise.
        for u in 0..n_sim {
            let counts: Vec<usize> = report.simulated_schedules.iter()
                .map(|s| s.occurrences(ProcessId::new(u)))
                .collect();
            // FloodMin: 1 update + n reads + 1 decide = n + 2 steps max.
            for &c in &counts {
                prop_assert!(c <= n_sim + 2);
            }
        }
        // Validity of FloodMin at the simulated level: decisions are minima
        // of proposals, hence proposals themselves.
        for d in report.simulated_decisions.iter().flatten() {
            prop_assert!((30..30 + n_sim as Value).contains(d));
        }
    }

    /// Safe agreement blocks only while someone sits at level 1: if all
    /// proposers run to completion, resolution always succeeds.
    #[test]
    fn completed_proposers_always_resolve(order in prop::collection::vec(0..2usize, 30..200)) {
        let width = 2;
        let u = Universe::new(width).unwrap();
        let mut sim = Sim::new(u);
        let sa = SafeAgreement::alloc(&mut sim, "sa", width);
        for p in u.processes() {
            let sa = sa.clone();
            sim.spawn(p, move |ctx| async move {
                sa.propose(&ctx, ctx.pid().index() as Value).await;
                ctx.decide(0); // mark completion of the unsafe zone
            }).unwrap();
        }
        // Random interleaving first, then a fair drain so both proposers
        // complete their (constant-length) unsafe zones.
        let mut src = ScheduleCursor::new(Schedule::from_indices(order));
        sim.run(&mut src, RunConfig::steps(10_000)
            .stop_when(StopWhen::AllFinished(ProcSet::full(u)))).unwrap();
        let drain: Vec<usize> = (0..40).map(|i| i % 2).collect();
        let mut src2 = ScheduleCursor::new(Schedule::from_indices(drain));
        sim.run(&mut src2, RunConfig::steps(40)).unwrap();
        prop_assert!(!sa.peek_unsafe(&sim), "no one may remain at level 1");
    }
}
