//! The Theorem 26 reduction, packaged as a runnable experiment.
//!
//! > If algorithm `A` solved `(k,k,n)`-agreement in `S^{k+1}_{n,n}`, then
//! > `k+1` processes could solve `(k,k,k+1)`-agreement in the asynchronous
//! > system by BG-simulating `A` — contradicting the asynchronous
//! > impossibility of `(k,k,k+1)`-agreement.
//!
//! [`run_reduction`] executes the simulation machinery end-to-end: `k+1`
//! simulators (under any host schedule, crashes included) simulate `n_sim`
//! machines, and the report exposes everything the proof talks about —
//! Property (i): at most as many stalled simulated processes as crashed
//! simulators; Property (ii): the simulated schedule keeps every
//! `(crashes+1)`-set timely (checkable with the `st-core` analyzer); and
//! the simulators' adopted decisions.

use st_core::{ProcSet, ProcessId, Schedule, StepSource, Universe, Value};
use st_sim::{RunConfig, RunStatus, Sim, StopWhen};

use crate::machine::StepMachine;
use crate::simulate::BgSimulation;

/// Everything observable about one reduction run.
#[derive(Clone, Debug)]
pub struct ReductionReport {
    /// Why the host run ended.
    pub status: RunStatus,
    /// Decisions adopted by the simulators (indexed by simulator).
    pub simulator_decisions: Vec<Option<Value>>,
    /// Decisions reached inside the simulated run (indexed by simulated
    /// process).
    pub simulated_decisions: Vec<Option<Value>>,
    /// Each live simulator's linearization of the simulated schedule.
    pub simulated_schedules: Vec<Schedule>,
    /// Host steps executed.
    pub host_steps: u64,
}

impl ReductionReport {
    /// Simulated processes that never decided (stalled or still running).
    pub fn stalled_simulated(&self) -> ProcSet {
        self.simulated_decisions
            .iter()
            .enumerate()
            .filter(|(_, d)| d.is_none())
            .map(|(u, _)| ProcessId::new(u))
            .collect()
    }

    /// Distinct values among simulator decisions.
    pub fn distinct_simulator_values(&self) -> usize {
        let set: std::collections::BTreeSet<Value> =
            self.simulator_decisions.iter().flatten().copied().collect();
        set.len()
    }
}

/// Runs `simulators` BG-simulators over the given machines under the host
/// schedule `src` for at most `budget` steps.
///
/// # Panics
///
/// Panics if `simulators == 0` or `machines` is empty.
pub fn run_reduction<M, S>(
    simulators: usize,
    machines: Vec<M>,
    max_reads: usize,
    src: &mut S,
    budget: u64,
) -> ReductionReport
where
    M: StepMachine + Clone + 'static,
    S: StepSource,
{
    assert!(simulators >= 1, "need at least one simulator");
    assert!(!machines.is_empty(), "need at least one simulated process");
    let universe = Universe::new(simulators).expect("valid simulator count");
    let mut sim = Sim::new(universe);
    let bg = BgSimulation::alloc(&mut sim, machines, max_reads);
    for s in universe.processes() {
        let bg = bg.clone();
        sim.spawn(s, move |ctx| bg.run_simulator(ctx))
            .expect("fresh simulator");
    }
    let status = sim
        .run(
            src,
            RunConfig::steps(budget).stop_when(StopWhen::AllFinished(ProcSet::full(universe))),
        )
        .expect("reduction schedule within the simulator universe");
    let report = sim.report();
    ReductionReport {
        status,
        simulator_decisions: universe
            .processes()
            .map(|s| report.decision_value(s))
            .collect(),
        simulated_decisions: bg.peek_simulated_decisions(&sim),
        simulated_schedules: universe
            .processes()
            .map(|s| bg.simulated_schedule(&report, s))
            .collect(),
        host_steps: report.steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{FloodMin, TrivialKDecide};
    use st_core::timeliness::empirical_bound;
    use st_core::ScheduleCursor;
    use st_sched::{CrashAfter, CrashPlan, RoundRobin, SeededRandom};

    /// Fault-free simulation of the trivial algorithm: everything decides,
    /// k-agreement and validity hold at both levels.
    #[test]
    fn fault_free_trivial_simulation() {
        let k = 2;
        let n_sim = 5;
        let machines: Vec<TrivialKDecide> = (0..n_sim)
            .map(|u| TrivialKDecide::new(u, k, 100 + u as Value))
            .collect();
        let mut src = RoundRobin::new(Universe::new(k + 1).unwrap());
        let report = run_reduction(k + 1, machines, 64, &mut src, 2_000_000);

        assert!(report.stalled_simulated().is_empty(), "{report:?}");
        assert!(report.simulator_decisions.iter().all(|d| d.is_some()));
        assert!(report.distinct_simulator_values() <= k);
        for d in report.simulated_decisions.iter().flatten() {
            assert!((100..100 + n_sim as Value).contains(d));
        }
    }

    /// Property (i): crashing one of the k+1 simulators stalls at most one
    /// simulated process; the other simulators still decide.
    #[test]
    fn one_simulator_crash_stalls_at_most_one() {
        for crash_step in [5u64, 17, 40, 99] {
            let k = 2;
            let n_sim = 5;
            let machines: Vec<TrivialKDecide> = (0..n_sim)
                .map(|u| TrivialKDecide::new(u, k, 100 + u as Value))
                .collect();
            let plan = CrashPlan::new().crash(ProcessId::new(0), crash_step);
            let mut src = CrashAfter::new(
                SeededRandom::new(Universe::new(k + 1).unwrap(), crash_step),
                plan,
            );
            let report = run_reduction(k + 1, machines, 64, &mut src, 2_000_000);

            assert!(
                report.stalled_simulated().len() <= 1,
                "crash@{crash_step}: stalled {}",
                report.stalled_simulated()
            );
            for s in 1..=k {
                assert!(
                    report.simulator_decisions[s].is_some(),
                    "crash@{crash_step}: live simulator {s} undecided"
                );
            }
            assert!(report.distinct_simulator_values() <= k);
        }
    }

    /// Property (ii): in the fault-free simulated schedule, every
    /// (k+1)-subset of simulated processes is timely with respect to all of
    /// them, with a small bound.
    #[test]
    fn simulated_schedule_is_k_plus_1_timely() {
        let k = 1;
        let n_sim = 4;
        // FloodMin keeps all machines reading for a while, giving a long
        // simulated schedule.
        let machines: Vec<FloodMin> = (0..n_sim)
            .map(|u| FloodMin::new(n_sim, 10 + u as Value))
            .collect();
        let mut src = RoundRobin::new(Universe::new(k + 1).unwrap());
        let report = run_reduction(k + 1, machines, 64, &mut src, 2_000_000);

        let sched = &report.simulated_schedules[0];
        assert!(
            sched.len() >= n_sim * 3,
            "schedule too short: {}",
            sched.len()
        );
        let universe = Universe::new(n_sim).unwrap();
        let full = ProcSet::full(universe);
        for pair in st_core::subsets::KSubsets::new(universe, k + 1) {
            let bound = empirical_bound(sched, pair, full);
            assert!(
                bound <= 2 * n_sim,
                "{pair} not timely in simulated schedule (bound {bound})"
            );
        }
    }

    /// Simulators agree with the simulated decisions (adoption).
    #[test]
    fn adoption_takes_simulated_values() {
        let k = 1;
        let n_sim = 3;
        let machines: Vec<TrivialKDecide> = (0..n_sim)
            .map(|u| TrivialKDecide::new(u, k, 70 + u as Value))
            .collect();
        let mut src = RoundRobin::new(Universe::new(k + 1).unwrap());
        let report = run_reduction(k + 1, machines, 32, &mut src, 1_000_000);
        let simulated: Vec<Value> = report
            .simulated_decisions
            .iter()
            .flatten()
            .copied()
            .collect();
        for d in report.simulator_decisions.iter().flatten() {
            assert!(simulated.contains(d), "adopted {d} not simulated");
        }
    }

    /// Deterministic host schedules give deterministic reductions.
    #[test]
    fn reduction_is_deterministic() {
        let run = || {
            let machines: Vec<TrivialKDecide> = (0..4)
                .map(|u| TrivialKDecide::new(u, 2, u as Value))
                .collect();
            let sched: Vec<usize> = (0..40_000).map(|i| (i * 7 + i / 11) % 3).collect();
            let mut src = ScheduleCursor::new(st_core::Schedule::from_indices(sched));
            let r = run_reduction(3, machines, 64, &mut src, 60_000);
            (r.simulator_decisions, r.simulated_decisions, r.host_steps)
        };
        assert_eq!(run(), run());
    }
}
