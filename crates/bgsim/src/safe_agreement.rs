//! Safe agreement: the synchronization core of the BG simulation.
//!
//! A safe-agreement object lets each of the `s` simulators propose a value
//! and agree on one, with the defining twist that **agreement may block only
//! if a proposer crashes inside its (constant-length) unsafe zone**. One
//! crashed simulator can therefore block at most one object — the
//! structural fact behind "k+1 simulators tolerate k crashes while blocking
//! at most k simulated processes" (Properties (i) of Theorem 26's proof).
//!
//! Implementation (Borowsky–Gafni): per proposer registers `V[s]` (value)
//! and `L[s]` (level ∈ {0, 1, 2}).
//!
//! - `propose(v)`: `V[me] ← v`; `L[me] ← 1` *(unsafe zone begins)*; read all
//!   levels; if some `L[j] = 2` then `L[me] ← 0` else `L[me] ← 2` *(unsafe
//!   zone ends)*.
//! - `try_resolve()`: read all levels; if some `L[j] = 1`, the object is
//!   **unresolved** (a proposer is in its unsafe zone — possibly crashed
//!   there); otherwise return `V[j]` for the smallest `j` with `L[j] = 2`.

use st_core::Value;
use st_sim::{ProcessCtx, Reg, Sim};

/// A single-shot safe-agreement object among `width` proposers
/// (the simulators). Clone into each simulator.
#[derive(Clone, Debug)]
pub struct SafeAgreement {
    values: Vec<Reg<Option<Value>>>,
    levels: Vec<Reg<u64>>,
}

/// Result of a non-blocking resolution poll.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Resolution {
    /// Agreement reached on this value.
    Agreed(Value),
    /// A proposer is (or crashed) inside its unsafe zone; poll again later.
    Unresolved,
    /// Nobody has proposed yet.
    Empty,
}

impl SafeAgreement {
    /// Allocates the object's registers (`V[s]`, `L[s]` for each of the
    /// `width` proposers, indexed by process index `0..width`).
    pub fn alloc(sim: &mut Sim, name: &str, width: usize) -> Self {
        let values = (0..width)
            .map(|s| sim.alloc_sw(format!("{name}.V[{s}]"), st_core::ProcessId::new(s), None))
            .collect();
        let levels = (0..width)
            .map(|s| sim.alloc_sw(format!("{name}.L[{s}]"), st_core::ProcessId::new(s), 0u64))
            .collect();
        SafeAgreement { values, levels }
    }

    /// Number of proposer slots.
    pub fn width(&self) -> usize {
        self.values.len()
    }

    /// Proposes `v` (call at most once per simulator per object).
    ///
    /// **`2 + width + 1` steps**, of which the *unsafe zone* — between the
    /// `L[me] ← 1` write and the final level write — spans `width + 1`
    /// steps; crashing there may block the object forever.
    pub async fn propose(&self, ctx: &ProcessCtx, v: Value) {
        let me = ctx.pid().index();
        ctx.write(self.values[me], Some(v)).await;
        ctx.write(self.levels[me], 1).await;
        let mut saw_two = false;
        for &l in &self.levels {
            if ctx.read(l).await == 2 {
                saw_two = true;
            }
        }
        ctx.write(self.levels[me], if saw_two { 0 } else { 2 })
            .await;
    }

    /// One non-blocking resolution scan. **`width` steps**, plus up to
    /// `width` value reads when resolvable.
    pub async fn try_resolve(&self, ctx: &ProcessCtx) -> Resolution {
        let mut levels = Vec::with_capacity(self.levels.len());
        for &l in &self.levels {
            levels.push(ctx.read(l).await);
        }
        if levels.contains(&1) {
            return Resolution::Unresolved;
        }
        for (j, &l) in levels.iter().enumerate() {
            if l == 2 {
                let v = ctx.read(self.values[j]).await;
                return Resolution::Agreed(v.expect("level 2 implies a proposed value"));
            }
        }
        Resolution::Empty
    }

    /// Whether the object looks blocked right now (instrumentation):
    /// someone at level 1, nobody at level 2 pending... simply: a level-1
    /// entry exists.
    pub fn peek_unsafe(&self, sim: &Sim) -> bool {
        self.levels.iter().any(|&l| sim.peek(l) == 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_core::{ProcSet, ProcessId, Schedule, ScheduleCursor, Universe};
    use st_sim::{RunConfig, StopWhen};

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    /// All proposers complete: agreement and validity hold under arbitrary
    /// interleavings.
    #[test]
    fn agreement_and_validity() {
        for seed in 0..40u64 {
            let width = 3;
            let u = Universe::new(width).unwrap();
            let mut sim = Sim::new(u);
            let sa = SafeAgreement::alloc(&mut sim, "sa", width);
            for p in u.processes() {
                let sa = sa.clone();
                let v = 100 + p.index() as Value;
                sim.spawn(p, move |ctx| async move {
                    sa.propose(&ctx, v).await;
                    loop {
                        match sa.try_resolve(&ctx).await {
                            Resolution::Agreed(w) => {
                                ctx.decide(w);
                                return;
                            }
                            _ => ctx.pause().await,
                        }
                    }
                })
                .unwrap();
            }
            let sched: Vec<usize> = (0..2000)
                .map(|i| {
                    ((seed
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(i * 2654435761))
                        % 3) as usize
                })
                .collect();
            let mut src = ScheduleCursor::new(Schedule::from_indices(sched));
            sim.run(
                &mut src,
                RunConfig::steps(2000).stop_when(StopWhen::AllDecided(ProcSet::full(u))),
            )
            .unwrap();
            let rep = sim.report();
            let decided: Vec<Value> = (0..width)
                .filter_map(|i| rep.decision_value(pid(i)))
                .collect();
            assert_eq!(decided.len(), width, "seed {seed}: all must decide");
            assert!(
                decided.iter().all(|&v| v == decided[0]),
                "seed {seed}: split {decided:?}"
            );
            assert!((100..103).contains(&decided[0]));
        }
    }

    /// A proposer crashing inside its unsafe zone blocks resolution; one
    /// crashing outside does not.
    #[test]
    fn crash_in_unsafe_zone_blocks() {
        let width = 2;
        let u = Universe::new(width).unwrap();
        let mut sim = Sim::new(u);
        let sa = SafeAgreement::alloc(&mut sim, "sa", width);
        {
            let sa = sa.clone();
            sim.spawn(pid(0), move |ctx| async move {
                sa.propose(&ctx, 7).await;
            })
            .unwrap();
        }
        {
            let sa = sa.clone();
            sim.spawn(pid(1), move |ctx| async move {
                sa.propose(&ctx, 8).await;
                loop {
                    if let Resolution::Agreed(w) = sa.try_resolve(&ctx).await {
                        ctx.decide(w);
                        return;
                    }
                }
            })
            .unwrap();
        }
        // p0 takes exactly 2 steps: V write + L←1 write — then crashes *in*
        // the unsafe zone. p1 runs alone forever after.
        let sched: Vec<usize> = [0usize, 0]
            .into_iter()
            .chain(std::iter::repeat_n(1, 500))
            .collect();
        let mut src = ScheduleCursor::new(Schedule::from_indices(sched));
        sim.run(&mut src, RunConfig::steps(502)).unwrap();
        assert!(sa.peek_unsafe(&sim), "p0 is stuck at level 1");
        assert_eq!(
            sim.report().decision_value(pid(1)),
            None,
            "p1 must block on the unresolved object"
        );
    }

    #[test]
    fn crash_before_proposing_does_not_block() {
        let width = 2;
        let u = Universe::new(width).unwrap();
        let mut sim = Sim::new(u);
        let sa = SafeAgreement::alloc(&mut sim, "sa", width);
        {
            let sa = sa.clone();
            sim.spawn(pid(1), move |ctx| async move {
                sa.propose(&ctx, 9).await;
                loop {
                    if let Resolution::Agreed(w) = sa.try_resolve(&ctx).await {
                        ctx.decide(w);
                        return;
                    }
                }
            })
            .unwrap();
        }
        // p0 never runs at all.
        let sched: Vec<usize> = std::iter::repeat_n(1, 200).collect();
        let mut src = ScheduleCursor::new(Schedule::from_indices(sched));
        sim.run(&mut src, RunConfig::steps(200)).unwrap();
        assert_eq!(sim.report().decision_value(pid(1)), Some(9));
    }

    #[test]
    fn empty_object_reports_empty() {
        let u = Universe::new(2).unwrap();
        let mut sim = Sim::new(u);
        let sa = SafeAgreement::alloc(&mut sim, "sa", 2);
        {
            let sa = sa.clone();
            sim.spawn(pid(0), move |ctx| async move {
                let r = sa.try_resolve(&ctx).await;
                ctx.decide(match r {
                    Resolution::Empty => 1,
                    _ => 0,
                });
            })
            .unwrap();
        }
        let mut src = ScheduleCursor::new(Schedule::from_indices(vec![0; 10]));
        sim.run(&mut src, RunConfig::steps(10)).unwrap();
        assert_eq!(sim.report().decision_value(pid(0)), Some(1));
    }
}
