//! The Borowsky–Gafni simulation driver.
//!
//! `s` simulators (the real processes of the host simulator) jointly execute
//! `n_sim` simulated [`StepMachine`]s over a simulated single-writer-cell
//! memory:
//!
//! - **cells** — `cells[u][s]` is simulator `s`'s copy of simulated process
//!   `u`'s cell, tagged with a version; a simulated read of `u` takes the
//!   maximum-version copy. Copies are written in the machine's deterministic
//!   order, so versions never regress per copy.
//! - **reads** go through one [`SafeAgreement`] object per `(u, read index)`
//!   so every simulator advances `u`'s automaton with the *same* outcome —
//!   the copies stay in lockstep.
//! - **scheduling** — each simulator round-robins over the simulated
//!   processes, skipping those whose current read is unresolved. A crashed
//!   simulator blocks at most the one object whose unsafe zone it was in,
//!   hence at most one simulated process per crashed simulator stalls
//!   (Property (i) of the Theorem 26 proof); the round-robin over the rest
//!   keeps every set of `crashes + 1` simulated processes timely
//!   (Property (ii)).
//! - **decisions** — each simulated decision is published in a shared
//!   register (idempotent: all simulators compute the same value), and every
//!   simulator adopts the first simulated decision it encounters — the
//!   adoption rule of the reduction.

use st_core::{ProcSet, Schedule, Value};
use st_sim::{ProcessCtx, Reg, RunReport, Sim};

use crate::machine::{SimOp, StepMachine};
use crate::safe_agreement::{Resolution, SafeAgreement};

/// Probe key: one event per simulated step a simulator completes; the value
/// is the simulated process index. Reconstructing the timeline of one
/// simulator gives (its linearization of) the simulated schedule.
pub const SIM_STEP_PROBE: &str = "sim-step";

fn encode(v: Option<Value>) -> Value {
    match v {
        None => 0,
        Some(x) => x
            .checked_add(1)
            .expect("simulated values must be < u64::MAX"),
    }
}

fn decode(e: Value) -> Option<Value> {
    e.checked_sub(1)
}

/// One simulated cell copy: `(version, value)`.
type CellCopy = (u64, Option<Value>);

/// A BG simulation instance: shared registers plus the machine templates.
/// Clone into each simulator.
#[derive(Clone)]
pub struct BgSimulation<M> {
    machines: Vec<M>,
    /// `cells[u][s]`: simulator `s`'s copy of `u`'s cell.
    cells: Vec<Vec<Reg<CellCopy>>>,
    /// `agreements[u][r]`: safe agreement for `u`'s `r`-th read.
    agreements: Vec<Vec<SafeAgreement>>,
    /// Simulated decision of `u`.
    decisions: Vec<Reg<Option<Value>>>,
    max_reads: usize,
}

impl<M: StepMachine + Clone + 'static> BgSimulation<M> {
    /// Allocates the simulation over `sim` (whose universe is the
    /// simulators). One machine per simulated process; each may perform at
    /// most `max_reads` simulated reads (register space is pre-allocated).
    pub fn alloc(sim: &mut Sim, machines: Vec<M>, max_reads: usize) -> Self {
        let width = sim.universe().n();
        let n_sim = machines.len();
        let cells = (0..n_sim)
            .map(|u| {
                (0..width)
                    .map(|s| {
                        sim.alloc_sw(
                            format!("bg.cell[{u}][{s}]"),
                            st_core::ProcessId::new(s),
                            (0u64, None),
                        )
                    })
                    .collect()
            })
            .collect();
        let agreements = (0..n_sim)
            .map(|u| {
                (0..max_reads)
                    .map(|r| SafeAgreement::alloc(sim, &format!("bg.sa[{u}][{r}]"), width))
                    .collect()
            })
            .collect();
        let decisions = (0..n_sim)
            .map(|u| sim.alloc(format!("bg.decision[{u}]"), None))
            .collect();
        BgSimulation {
            machines,
            cells,
            agreements,
            decisions,
            max_reads,
        }
    }

    /// Number of simulated processes.
    pub fn n_sim(&self) -> usize {
        self.machines.len()
    }

    /// Simulated decision registers, peeked without steps.
    pub fn peek_simulated_decisions(&self, sim: &Sim) -> Vec<Option<Value>> {
        self.decisions.iter().map(|&d| sim.peek(d)).collect()
    }

    /// The simulator automaton: runs its copies of all machines to
    /// completion (or forever, if blocked), adopting the first simulated
    /// decision as its own.
    pub async fn run_simulator(self, ctx: ProcessCtx) {
        let me = ctx.pid().index();
        let n_sim = self.machines.len();
        let mut machines = self.machines.clone();
        let mut versions = vec![0u64; n_sim];
        let mut read_idx = vec![0usize; n_sim];
        let mut proposed = vec![false; n_sim];
        let mut halted = vec![false; n_sim];
        let mut round = 0usize;

        loop {
            // Adoption sweep: one decision register per round.
            if !ctx.has_decided() {
                if let Some(v) = ctx.read(self.decisions[round % n_sim]).await {
                    ctx.decide(v);
                }
            }

            let mut all_done = true;
            for u in 0..n_sim {
                if halted[u] {
                    continue;
                }
                all_done = false;
                match machines[u].pending() {
                    SimOp::Update(v) => {
                        versions[u] += 1;
                        ctx.write(self.cells[u][me], (versions[u], Some(v))).await;
                        machines[u].advance(None);
                        ctx.probe(SIM_STEP_PROBE, u as u64);
                    }
                    SimOp::ReadCell(w) => {
                        if read_idx[u] >= self.max_reads {
                            // Read budget exhausted: treat as stalled.
                            halted[u] = true;
                            continue;
                        }
                        let object = &self.agreements[u][read_idx[u]];
                        if !proposed[u] {
                            // My view of w's cell: max version over copies.
                            let mut best: CellCopy = (0, None);
                            for &copy in &self.cells[w] {
                                let c = ctx.read(copy).await;
                                if c.0 > best.0 {
                                    best = c;
                                }
                            }
                            object.propose(&ctx, encode(best.1)).await;
                            proposed[u] = true;
                        }
                        match object.try_resolve(&ctx).await {
                            Resolution::Agreed(enc) => {
                                machines[u].advance(Some(decode(enc)));
                                read_idx[u] += 1;
                                proposed[u] = false;
                                ctx.probe(SIM_STEP_PROBE, u as u64);
                            }
                            Resolution::Unresolved | Resolution::Empty => {
                                // Blocked (possibly by a crashed simulator's
                                // unsafe zone): skip, retry next round.
                            }
                        }
                    }
                    SimOp::Decide(v) => {
                        ctx.write(self.decisions[u], Some(v)).await;
                        if !ctx.has_decided() {
                            ctx.decide(v);
                        }
                        machines[u].advance(None);
                        ctx.probe(SIM_STEP_PROBE, u as u64);
                    }
                    SimOp::Halt => {
                        halted[u] = true;
                    }
                }
            }
            if all_done {
                return;
            }
            round += 1;
        }
    }

    /// Extracts simulator `s`'s linearization of the simulated schedule from
    /// a run report.
    pub fn simulated_schedule(
        &self,
        report: &RunReport,
        simulator: st_core::ProcessId,
    ) -> Schedule {
        report
            .probes
            .timeline(simulator, SIM_STEP_PROBE)
            .into_iter()
            .map(|(_, u)| st_core::ProcessId::new(u as usize))
            .collect()
    }

    /// The simulated processes that decided, as a set.
    pub fn decided_simulated(&self, sim: &Sim) -> ProcSet {
        self.peek_simulated_decisions(sim)
            .iter()
            .enumerate()
            .filter(|(_, d)| d.is_some())
            .map(|(u, _)| st_core::ProcessId::new(u))
            .collect()
    }
}

impl<M> std::fmt::Debug for BgSimulation<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "BgSimulation[n_sim={}, max_reads={}]",
            self.machines.len(),
            self.max_reads
        )
    }
}
