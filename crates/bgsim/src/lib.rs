//! The Borowsky–Gafni simulation substrate.
//!
//! The impossibility side of Theorem 26 is proved by reduction: `k+1`
//! processes BG-simulate an `n`-process algorithm such that (i) at most `k`
//! simulated processes crash and (ii) every set of `k+1` simulated processes
//! is timely in the simulated schedule. This crate implements that
//! machinery from scratch and makes both properties measurable:
//!
//! - [`SafeAgreement`] — the Borowsky–Gafni object whose constant-length
//!   unsafe zone is the reason one crashed simulator blocks at most one
//!   simulated process;
//! - [`StepMachine`] / [`SimOp`] — deterministic simulated automata over
//!   single-writer-cell memory (with [`TrivialKDecide`] and [`FloodMin`] as
//!   concrete algorithms);
//! - [`BgSimulation`] — the simulation driver (versioned cell copies,
//!   per-read safe agreement, round-robin simulated scheduling, decision
//!   adoption);
//! - [`run_reduction`] — the packaged Theorem 26 experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod machine;
mod reduction;
mod safe_agreement;
mod simulate;

pub use machine::{FloodMin, SimOp, StepMachine, TrivialKDecide};
pub use reduction::{run_reduction, ReductionReport};
pub use safe_agreement::{Resolution, SafeAgreement};
pub use simulate::{BgSimulation, SIM_STEP_PROBE};
