//! Deterministic step machines: the simulated-algorithm interface.
//!
//! BG simulation requires every simulator to run its *own copy* of each
//! simulated process's automaton and keep the copies in lockstep, which is
//! only possible if the automaton is deterministic given the agreed outcomes
//! of its reads. A [`StepMachine`] makes that structure explicit: it exposes
//! a pending operation over the simulated single-writer-cell memory (the
//! snapshot-style memory of the BG literature) and advances deterministically
//! once the outcome is supplied.

use st_core::Value;

/// A pending operation of a simulated process on the simulated memory.
///
/// The simulated memory has one cell per simulated process (single-writer,
/// as in the BG/IIS setting): `Update` writes the caller's cell, `ReadCell`
/// reads any cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimOp {
    /// Write the caller's own cell.
    Update(Value),
    /// Read the cell of the given simulated process; the agreed value
    /// (or `None` if that cell was never written) is fed to
    /// [`StepMachine::advance`].
    ReadCell(usize),
    /// Decide the given value (recorded by the simulation; the machine
    /// keeps running until `Halt`).
    Decide(Value),
    /// The machine has terminated.
    Halt,
}

/// A deterministic automaton of a simulated process.
pub trait StepMachine {
    /// The pending operation. Must be stable (pure) until [`advance`]
    /// (`Halt` is absorbing).
    ///
    /// [`advance`]: StepMachine::advance
    fn pending(&self) -> SimOp;

    /// Advances past the pending operation; `read_value` carries the agreed
    /// outcome for `ReadCell` (and is `None` for other operations).
    fn advance(&mut self, read_value: Option<Option<Value>>);
}

/// The trivial `t < k` agreement algorithm as a step machine: simulated
/// processes `0..k` update their cell with their proposal and decide it;
/// the rest poll the first `k` cells and adopt the first value seen.
#[derive(Clone, Debug)]
pub struct TrivialKDecide {
    me: usize,
    k: usize,
    proposal: Value,
    state: TrivialState,
    scan_at: usize,
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum TrivialState {
    Publish,
    DecideOwn,
    Scan,
    DecideAdopted(Value),
    Done,
}

impl TrivialKDecide {
    /// Creates the machine for simulated process `me` of `n_sim`, degree
    /// `k`, proposing `proposal`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `me >= n_sim` is inconsistent (callers size
    /// machines by index).
    pub fn new(me: usize, k: usize, proposal: Value) -> Self {
        assert!(k >= 1, "k must be positive");
        TrivialKDecide {
            me,
            k,
            proposal,
            state: if me < k {
                TrivialState::Publish
            } else {
                TrivialState::Scan
            },
            scan_at: 0,
        }
    }
}

impl StepMachine for TrivialKDecide {
    fn pending(&self) -> SimOp {
        match &self.state {
            TrivialState::Publish => SimOp::Update(self.proposal),
            TrivialState::DecideOwn => SimOp::Decide(self.proposal),
            TrivialState::Scan => SimOp::ReadCell(self.scan_at),
            TrivialState::DecideAdopted(v) => SimOp::Decide(*v),
            TrivialState::Done => SimOp::Halt,
        }
    }

    fn advance(&mut self, read_value: Option<Option<Value>>) {
        self.state = match std::mem::replace(&mut self.state, TrivialState::Done) {
            TrivialState::Publish => TrivialState::DecideOwn,
            TrivialState::DecideOwn => TrivialState::Done,
            TrivialState::Scan => match read_value.expect("ReadCell outcome required") {
                Some(v) => TrivialState::DecideAdopted(v),
                None => {
                    self.scan_at = (self.scan_at + 1) % self.k;
                    TrivialState::Scan
                }
            },
            TrivialState::DecideAdopted(_) => TrivialState::Done,
            TrivialState::Done => TrivialState::Done,
        };
        let _ = self.me;
    }
}

/// A flood-min machine: publish the proposal, read every cell once, decide
/// the minimum value seen (validity-only agreement; exercises reads of all
/// cells).
#[derive(Clone, Debug)]
pub struct FloodMin {
    n_sim: usize,
    proposal: Value,
    min_seen: Value,
    state: FloodState,
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum FloodState {
    Publish,
    Read(usize),
    Decide,
    Done,
}

impl FloodMin {
    /// Creates the machine for one of `n_sim` simulated processes.
    pub fn new(n_sim: usize, proposal: Value) -> Self {
        FloodMin {
            n_sim,
            proposal,
            min_seen: proposal,
            state: FloodState::Publish,
        }
    }
}

impl StepMachine for FloodMin {
    fn pending(&self) -> SimOp {
        match self.state {
            FloodState::Publish => SimOp::Update(self.proposal),
            FloodState::Read(u) => SimOp::ReadCell(u),
            FloodState::Decide => SimOp::Decide(self.min_seen),
            FloodState::Done => SimOp::Halt,
        }
    }

    fn advance(&mut self, read_value: Option<Option<Value>>) {
        self.state = match self.state {
            FloodState::Publish => FloodState::Read(0),
            FloodState::Read(u) => {
                if let Some(Some(v)) = read_value {
                    self.min_seen = self.min_seen.min(v);
                }
                if u + 1 < self.n_sim {
                    FloodState::Read(u + 1)
                } else {
                    FloodState::Decide
                }
            }
            FloodState::Decide => FloodState::Done,
            FloodState::Done => FloodState::Done,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_publisher_path() {
        let mut m = TrivialKDecide::new(0, 2, 42);
        assert_eq!(m.pending(), SimOp::Update(42));
        m.advance(None);
        assert_eq!(m.pending(), SimOp::Decide(42));
        m.advance(None);
        assert_eq!(m.pending(), SimOp::Halt);
    }

    #[test]
    fn trivial_adopter_path() {
        let mut m = TrivialKDecide::new(3, 2, 99);
        assert_eq!(m.pending(), SimOp::ReadCell(0));
        m.advance(Some(None)); // cell 0 empty
        assert_eq!(m.pending(), SimOp::ReadCell(1));
        m.advance(Some(Some(7)));
        assert_eq!(m.pending(), SimOp::Decide(7));
        m.advance(None);
        assert_eq!(m.pending(), SimOp::Halt);
    }

    #[test]
    fn adopter_keeps_polling_until_value() {
        let mut m = TrivialKDecide::new(2, 2, 5);
        for _ in 0..10 {
            assert!(matches!(m.pending(), SimOp::ReadCell(_)));
            m.advance(Some(None));
        }
        m.advance(Some(Some(3)));
        assert_eq!(m.pending(), SimOp::Decide(3));
    }

    #[test]
    fn flood_min_takes_minimum() {
        let mut m = FloodMin::new(3, 9);
        assert_eq!(m.pending(), SimOp::Update(9));
        m.advance(None);
        m.advance(Some(Some(4))); // cell 0
        m.advance(Some(None)); // cell 1 empty
        m.advance(Some(Some(6))); // cell 2
        assert_eq!(m.pending(), SimOp::Decide(4));
        m.advance(None);
        assert_eq!(m.pending(), SimOp::Halt);
    }

    #[test]
    fn halt_is_absorbing() {
        let mut m = FloodMin::new(1, 1);
        while m.pending() != SimOp::Halt {
            let arg = matches!(m.pending(), SimOp::ReadCell(_)).then_some(None);
            m.advance(arg);
        }
        m.advance(None);
        assert_eq!(m.pending(), SimOp::Halt);
    }
}
