//! The `st-serve/v1` wire vocabulary: verbs, error kinds, job states, the
//! request/response envelopes, and the persisted job-spec document.
//!
//! Everything here is plain data over [`st_core::Json`]; the framing lives
//! in [`st_core::frame`] and the human-readable specification in
//! `PROTOCOL.md` at the workspace root (CI greps the two against each
//! other — see `scripts/check_protocol_doc.sh`).

use st_campaign::store::encode_scenario;
use st_campaign::{store, Campaign, Scenario};
use st_core::Json;

/// The protocol identifier every request and response carries. A peer
/// speaking any other version is answered with a typed
/// [`ErrorKind::SchemaMismatch`] naming both versions — negotiation is
/// "match exactly or be told what would", never silent coercion.
pub const PROTO: &str = "st-serve/v1";

/// Schema of the `job-<key>.spec.json` documents the daemon persists in
/// its state directory (the durable half of a `submit`).
pub const JOB_SCHEMA: &str = "st-serve/job-v1";

/// Request verbs.
// PROTOCOL-VERBS: hello submit status cancel resume fetch-outcomes
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Verb {
    /// Liveness + version probe; also what clients poll for readiness.
    Hello,
    /// Enqueue a campaign (idempotent per key; parked jobs requeue).
    Submit,
    /// Report one job (with `key`) or all jobs (without).
    Status,
    /// Stop a job at its next chunk boundary.
    Cancel,
    /// Requeue an interrupted or cancelled job.
    Resume,
    /// Return the job's outcome store document.
    FetchOutcomes,
}

impl Verb {
    /// Every verb, in documentation order.
    pub const ALL: [Verb; 6] = [
        Verb::Hello,
        Verb::Submit,
        Verb::Status,
        Verb::Cancel,
        Verb::Resume,
        Verb::FetchOutcomes,
    ];

    /// The verb's wire name.
    pub fn wire(self) -> &'static str {
        match self {
            Verb::Hello => "hello",
            Verb::Submit => "submit",
            Verb::Status => "status",
            Verb::Cancel => "cancel",
            Verb::Resume => "resume",
            Verb::FetchOutcomes => "fetch-outcomes",
        }
    }

    /// Parses a wire name.
    pub fn parse(name: &str) -> Option<Verb> {
        Verb::ALL.into_iter().find(|v| v.wire() == name)
    }
}

/// Typed error kinds an error response carries (`error.kind`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ErrorKind {
    /// Backpressure: accepting the campaign would exceed the daemon's
    /// in-flight scenario bound. Retry later.
    Busy,
    /// A version mismatch: wrong protocol version, or the job's persisted
    /// outcome store was written by a different store schema (the message
    /// carries the store's own `SchemaMismatch` text).
    SchemaMismatch,
    /// The key exists with a *different* campaign spec — the staleness
    /// guard refusing to silently mix two sweeps under one identity.
    SpecMismatch,
    /// The request document is structurally invalid.
    Malformed,
    /// The verb is not in [`Verb::ALL`].
    UnknownVerb,
    /// No job under the requested key.
    UnknownJob,
    /// A daemon-side failure (state-directory I/O, corrupt artifacts).
    Internal,
}

impl ErrorKind {
    /// Every kind, in documentation order.
    pub const ALL: [ErrorKind; 7] = [
        ErrorKind::Busy,
        ErrorKind::SchemaMismatch,
        ErrorKind::SpecMismatch,
        ErrorKind::Malformed,
        ErrorKind::UnknownVerb,
        ErrorKind::UnknownJob,
        ErrorKind::Internal,
    ];

    /// The kind's wire name.
    pub fn wire(self) -> &'static str {
        match self {
            ErrorKind::Busy => "busy",
            ErrorKind::SchemaMismatch => "schema-mismatch",
            ErrorKind::SpecMismatch => "spec-mismatch",
            ErrorKind::Malformed => "malformed",
            ErrorKind::UnknownVerb => "unknown-verb",
            ErrorKind::UnknownJob => "unknown-job",
            ErrorKind::Internal => "internal",
        }
    }

    /// Parses a wire name.
    pub fn parse(name: &str) -> Option<ErrorKind> {
        ErrorKind::ALL.into_iter().find(|k| k.wire() == name)
    }
}

/// A job's lifecycle state as reported by `status`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum JobState {
    /// Accepted and waiting for the worker.
    Queued,
    /// Executing (chunk by chunk, checkpointing after each).
    Running,
    /// Every scenario has an outcome in the job's store.
    Done,
    /// The daemon stopped (crash, restart) with scenarios pending;
    /// `resume` (or an identical re-`submit`) requeues it.
    Interrupted,
    /// Cancelled at a chunk boundary; completed outcomes are kept and a
    /// `resume` continues from them.
    Cancelled,
    /// The persisted store cannot be read (schema mismatch, corruption);
    /// requests against the job surface the stored error text.
    Broken,
}

impl JobState {
    /// The state's wire name.
    pub fn wire(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Interrupted => "interrupted",
            JobState::Cancelled => "cancelled",
            JobState::Broken => "broken",
        }
    }

    /// Parses a wire name.
    pub fn parse(name: &str) -> Option<JobState> {
        [
            JobState::Queued,
            JobState::Running,
            JobState::Done,
            JobState::Interrupted,
            JobState::Cancelled,
            JobState::Broken,
        ]
        .into_iter()
        .find(|s| s.wire() == name)
    }
}

/// Builds a request envelope: `{"proto", "verb", <fields>}`.
pub fn request(verb: Verb, fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    let mut members = vec![
        ("proto".to_string(), Json::str(PROTO)),
        ("verb".to_string(), Json::str(verb.wire())),
    ];
    members.extend(fields.into_iter().map(|(k, v)| (k.to_string(), v)));
    Json::Obj(members)
}

/// Builds a success envelope: `{"proto", "ok": true, <fields>}`.
pub fn ok_response(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    let mut members = vec![
        ("proto".to_string(), Json::str(PROTO)),
        ("ok".to_string(), Json::Bool(true)),
    ];
    members.extend(fields.into_iter().map(|(k, v)| (k.to_string(), v)));
    Json::Obj(members)
}

/// Builds an error envelope:
/// `{"proto", "ok": false, "error": {"kind", "message"}}`.
pub fn error_response(kind: ErrorKind, message: impl Into<String>) -> Json {
    Json::obj([
        ("proto", Json::str(PROTO)),
        ("ok", Json::Bool(false)),
        (
            "error",
            Json::obj([
                ("kind", Json::str(kind.wire())),
                ("message", Json::str(message.into())),
            ]),
        ),
    ])
}

/// Validates a campaign key: 1–100 chars of `[A-Za-z0-9._:-]`, not
/// starting with a dot (keys name files in the state directory).
pub fn validate_key(key: &str) -> Result<(), String> {
    if key.is_empty() || key.len() > 100 {
        return Err(format!(
            "campaign key must be 1–100 characters, got {}",
            key.len()
        ));
    }
    if key.starts_with('.') {
        return Err("campaign key must not start with '.'".to_string());
    }
    if let Some(bad) = key
        .chars()
        .find(|c| !c.is_ascii_alphanumeric() && !matches!(c, '.' | '_' | ':' | '-'))
    {
        return Err(format!(
            "campaign key may use [A-Za-z0-9._:-] only, got {bad:?}"
        ));
    }
    Ok(())
}

/// Serializes a campaign's `(rank, scenario)` pairs for the wire / the
/// persisted job spec, using the store's canonical scenario encoding (so
/// spec equality is byte equality).
pub fn campaign_entries(campaign: &Campaign) -> Json {
    Json::Arr(
        campaign
            .ranks()
            .iter()
            .zip(campaign.scenarios())
            .map(|(&rank, scenario)| {
                Json::obj([
                    ("rank", Json::U64(rank as u64)),
                    ("scenario", encode_scenario(scenario)),
                ])
            })
            .collect(),
    )
}

/// Decodes an `entries` array (from a `submit` request or a persisted job
/// spec) back into `(rank, scenario)` pairs.
pub fn decode_entries(entries: &Json) -> Result<Vec<(usize, Scenario)>, String> {
    let items = entries
        .as_arr()
        .ok_or_else(|| "\"entries\" must be an array".to_string())?;
    let mut out = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let rank = item
            .get("rank")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("entries[{i}] has no integer \"rank\""))?;
        let scenario = item
            .get("scenario")
            .ok_or_else(|| format!("entries[{i}] has no \"scenario\""))?;
        let scenario =
            store::decode_scenario(scenario).map_err(|e| format!("entries[{i}].scenario: {e}"))?;
        out.push((rank as usize, scenario));
    }
    Ok(out)
}

/// The canonical persisted job-spec document for a campaign under `key`
/// (schema [`JOB_SCHEMA`]). Byte-stable: the daemon compares re-submitted
/// specs against this value to detect spec drift.
pub fn job_spec(key: &str, campaign: &Campaign) -> Json {
    Json::obj([
        ("schema", Json::str(JOB_SCHEMA)),
        ("key", Json::str(key)),
        ("entries", campaign_entries(campaign)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verbs_round_trip_their_wire_names() {
        for v in Verb::ALL {
            assert_eq!(Verb::parse(v.wire()), Some(v));
        }
        assert_eq!(Verb::parse("fetch"), None);
    }

    #[test]
    fn error_kinds_and_job_states_round_trip() {
        for k in ErrorKind::ALL {
            assert_eq!(ErrorKind::parse(k.wire()), Some(k));
        }
        for s in [
            "queued",
            "running",
            "done",
            "interrupted",
            "cancelled",
            "broken",
        ] {
            assert_eq!(JobState::parse(s).map(JobState::wire), Some(s));
        }
    }

    /// The `PROTOCOL-VERBS` marker comment above [`Verb`] is what the CI
    /// doc-freshness script greps; this pins it to the enum itself so the
    /// marker cannot rot either.
    #[test]
    fn protocol_verbs_marker_matches_the_enum() {
        let source = include_str!("protocol.rs");
        let marker = source
            .lines()
            .find_map(|l| l.trim().strip_prefix("// PROTOCOL-VERBS:"))
            .expect("marker comment present");
        let listed: Vec<&str> = marker.split_whitespace().collect();
        let actual: Vec<&str> = Verb::ALL.into_iter().map(Verb::wire).collect();
        assert_eq!(listed, actual);
    }

    #[test]
    fn envelopes_have_the_documented_shape() {
        let req = request(Verb::Status, [("key", Json::str("e3"))]);
        assert_eq!(req.get("proto").and_then(Json::as_str), Some(PROTO));
        assert_eq!(req.get("verb").and_then(Json::as_str), Some("status"));
        assert_eq!(req.get("key").and_then(Json::as_str), Some("e3"));

        let ok = ok_response([("jobs", Json::arr([]))]);
        assert_eq!(ok.get("ok").and_then(Json::as_bool), Some(true));

        let err = error_response(ErrorKind::Busy, "at capacity");
        assert_eq!(err.get("ok").and_then(Json::as_bool), Some(false));
        let e = err.get("error").unwrap();
        assert_eq!(e.get("kind").and_then(Json::as_str), Some("busy"));
        assert_eq!(e.get("message").and_then(Json::as_str), Some("at capacity"));
    }

    #[test]
    fn keys_are_validated() {
        assert!(validate_key("e3").is_ok());
        assert!(validate_key("scenario:crash-recovery_2.1").is_ok());
        assert!(validate_key("").is_err());
        assert!(validate_key(".hidden").is_err());
        assert!(validate_key("a/b").is_err());
        assert!(validate_key(&"k".repeat(101)).is_err());
    }
}
