//! The client half: one TCP connection per request, typed errors, and the
//! submit→poll→fetch loop `stlab --serve` runs a campaign through.

use std::fmt;
use std::net::TcpStream;
use std::time::Duration;

use st_campaign::{Campaign, OutcomeStore, ScenarioOutcome};
use st_core::frame::{read_frame, write_frame, FrameError};
use st_core::Json;

use crate::protocol::{self, campaign_entries, JobState, Verb};

/// Default delay between `status` polls in
/// [`run_campaign`](ServeClient::run_campaign).
pub const DEFAULT_POLL: Duration = Duration::from_millis(20);

/// A typed client failure. Every variant's `Display` text is what `stlab`
/// prints before exiting 2 — the messages are part of the CLI contract.
#[derive(Debug)]
pub enum ClientError {
    /// TCP connect failed (daemon down, wrong address).
    Connect {
        /// The address dialed.
        addr: String,
        /// The connect error.
        source: std::io::Error,
    },
    /// The connection broke mid-request, or the peer sent garbage framing.
    Frame(FrameError),
    /// The response parsed but is not a protocol envelope.
    Malformed(String),
    /// The daemon answered with a typed error response.
    Server {
        /// The error kind's wire name (e.g. `busy`, `schema-mismatch`).
        kind: String,
        /// The daemon's message.
        message: String,
    },
    /// The request-response exchange worked, but the job cannot produce
    /// outcomes (cancelled, broken, incomplete fetch).
    Failed(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Connect { addr, source } => {
                write!(f, "cannot reach st-serve at {addr}: {source}")
            }
            ClientError::Frame(e) => write!(f, "st-serve connection failed: {e}"),
            ClientError::Malformed(msg) => write!(f, "malformed st-serve response: {msg}"),
            ClientError::Server { kind, message } => {
                write!(f, "st-serve refused [{kind}]: {message}")
            }
            ClientError::Failed(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// A job's status as reported by the daemon.
#[derive(Clone, Debug)]
pub struct JobStatus {
    /// The campaign key.
    pub key: String,
    /// Lifecycle state.
    pub state: JobState,
    /// Scenario count.
    pub total: u64,
    /// Outcomes recorded so far.
    pub completed: u64,
}

impl fmt::Display for JobStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {}/{}",
            self.key,
            self.state.wire(),
            self.completed,
            self.total
        )
    }
}

/// A client for one daemon address. Connections are per-request (the
/// protocol is one frame in, one frame out), so a `ServeClient` is just
/// the address plus the request plumbing.
#[derive(Clone, Debug)]
pub struct ServeClient {
    addr: String,
}

impl ServeClient {
    /// A client for the daemon at `addr` (e.g. `127.0.0.1:7777`).
    pub fn new(addr: impl Into<String>) -> Self {
        ServeClient { addr: addr.into() }
    }

    fn request(&self, verb: Verb, fields: Vec<(&'static str, Json)>) -> Result<Json, ClientError> {
        let mut sock = TcpStream::connect(&self.addr).map_err(|e| ClientError::Connect {
            addr: self.addr.clone(),
            source: e,
        })?;
        write_frame(&mut sock, &protocol::request(verb, fields)).map_err(ClientError::Frame)?;
        let resp = read_frame(&mut sock).map_err(ClientError::Frame)?;
        match resp.get("ok").and_then(Json::as_bool) {
            Some(true) => Ok(resp),
            Some(false) => {
                let field = |name: &str| {
                    resp.get("error")
                        .and_then(|e| e.get(name))
                        .and_then(Json::as_str)
                        .unwrap_or("")
                        .to_string()
                };
                Err(ClientError::Server {
                    kind: field("kind"),
                    message: field("message"),
                })
            }
            None => Err(ClientError::Malformed(
                "response has no \"ok\" field".to_string(),
            )),
        }
    }

    fn job_from(&self, resp: &Json) -> Result<JobStatus, ClientError> {
        let job = resp
            .get("job")
            .ok_or_else(|| ClientError::Malformed("response has no \"job\" field".into()))?;
        let state = job.get("state").and_then(Json::as_str).unwrap_or("");
        Ok(JobStatus {
            key: job
                .get("key")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
            state: JobState::parse(state)
                .ok_or_else(|| ClientError::Malformed(format!("unknown job state {state:?}")))?,
            total: job.get("total").and_then(Json::as_u64).unwrap_or(0),
            completed: job.get("completed").and_then(Json::as_u64).unwrap_or(0),
        })
    }

    /// Liveness/version probe. `Ok` means the daemon is up and speaks this
    /// client's protocol version.
    pub fn hello(&self) -> Result<(), ClientError> {
        self.request(Verb::Hello, Vec::new()).map(|_| ())
    }

    /// Submits `campaign` under `key`. Idempotent: an identical re-submit
    /// reports the existing job (requeueing it if it was interrupted or
    /// cancelled); a different campaign under the same key is a typed
    /// `spec-mismatch` refusal.
    pub fn submit(&self, key: &str, campaign: &Campaign) -> Result<JobStatus, ClientError> {
        let resp = self.request(
            Verb::Submit,
            vec![
                ("key", Json::str(key)),
                ("entries", campaign_entries(campaign)),
            ],
        )?;
        self.job_from(&resp)
    }

    /// One job's status.
    pub fn status(&self, key: &str) -> Result<JobStatus, ClientError> {
        let resp = self.request(Verb::Status, vec![("key", Json::str(key))])?;
        self.job_from(&resp)
    }

    /// Every job's status, sorted by key.
    pub fn jobs(&self) -> Result<Vec<JobStatus>, ClientError> {
        let resp = self.request(Verb::Status, Vec::new())?;
        let jobs = resp
            .get("jobs")
            .and_then(Json::as_arr)
            .ok_or_else(|| ClientError::Malformed("response has no \"jobs\" array".into()))?;
        jobs.iter()
            .map(|j| self.job_from(&Json::obj([("job", j.clone())])))
            .collect()
    }

    /// Requests cancellation (honored at the job's next chunk boundary).
    pub fn cancel(&self, key: &str) -> Result<JobStatus, ClientError> {
        let resp = self.request(Verb::Cancel, vec![("key", Json::str(key))])?;
        self.job_from(&resp)
    }

    /// Requeues an interrupted or cancelled job.
    pub fn resume(&self, key: &str) -> Result<JobStatus, ClientError> {
        let resp = self.request(Verb::Resume, vec![("key", Json::str(key))])?;
        self.job_from(&resp)
    }

    /// Fetches the job's outcome store. The returned store's
    /// [`to_json_string`](OutcomeStore::to_json_string) reproduces the
    /// daemon's file bytes exactly (the store's parse→serialize round trip
    /// is byte-stable).
    pub fn fetch_store(&self, key: &str) -> Result<(JobStatus, OutcomeStore), ClientError> {
        let resp = self.request(Verb::FetchOutcomes, vec![("key", Json::str(key))])?;
        let job = self.job_from(&resp)?;
        let doc = resp
            .get("store")
            .ok_or_else(|| ClientError::Malformed("response has no \"store\" field".into()))?;
        let store = OutcomeStore::from_json_str(&doc.to_string())
            .map_err(|e| ClientError::Failed(format!("fetched store for {key:?}: {e}")))?;
        Ok((job, store))
    }

    /// The full client-side campaign run: submit, poll `status` every
    /// `poll`, fetch the finished store, and return the rank-ordered
    /// outcomes — the drop-in remote counterpart of
    /// [`Campaign::run_resumed`]. A job that ends cancelled or broken, or
    /// a fetched store that does not cover the campaign, is a typed error.
    pub fn run_campaign(
        &self,
        key: &str,
        campaign: &Campaign,
        poll: Duration,
    ) -> Result<Vec<ScenarioOutcome>, ClientError> {
        self.submit(key, campaign)?;
        loop {
            let job = self.status(key)?;
            match job.state {
                JobState::Done => break,
                JobState::Queued | JobState::Running => std::thread::sleep(poll),
                other => {
                    return Err(ClientError::Failed(format!(
                        "st-serve job {key:?} ended {}",
                        other.wire()
                    )))
                }
            }
        }
        let (_, store) = self.fetch_store(key)?;
        let outcomes: Vec<ScenarioOutcome> = store
            .entries()
            .iter()
            .filter(|e| e.campaign == key)
            .map(|e| e.outcome.clone())
            .collect();
        let ranks: Vec<usize> = outcomes.iter().map(|o| o.rank).collect();
        if ranks != campaign.ranks() {
            return Err(ClientError::Failed(format!(
                "st-serve returned {} outcome(s) for {key:?}, campaign expects {}",
                outcomes.len(),
                campaign.len()
            )));
        }
        Ok(outcomes)
    }
}
