//! `st-serve` — the campaign daemon and its ops-side client verbs.
//!
//! Daemon mode binds a TCP address and serves the `st-serve/v1` protocol
//! (see `PROTOCOL.md`); the client verbs are thin wrappers over
//! [`ServeClient`] for scripting and CI (readiness probes, resume after a
//! restart, fetching a job's outcome store).

use std::process::ExitCode;

use st_serve::{ServeClient, ServeConfig, Server};

const HELP: &str = "\
st-serve — the campaign engine as a long-running daemon (PROTOCOL.md)

USAGE:
  st-serve --listen ADDR --state DIR [OPTIONS]     run the daemon
  st-serve hello  --addr ADDR                      liveness/version probe
  st-serve status --addr ADDR [--key KEY]          one job, or all jobs
  st-serve resume --addr ADDR --key KEY            requeue a parked job
  st-serve cancel --addr ADDR --key KEY            stop a job at its next chunk
  st-serve fetch  --addr ADDR --key KEY [--out P]  write the job's outcome store

DAEMON OPTIONS:
  --listen ADDR            address to bind (e.g. 127.0.0.1:7777)
  --state DIR              state directory (job specs + outcome stores)
  --threads N              campaign workers per chunk (default: hardware)
  --chunk N                scenarios per checkpoint (default 8)
  --max-pending N          in-flight scenario bound; beyond it submits get
                           a typed busy error (default 1000000)
  --exit-after-chunks N    crash hook: stop as if killed after N chunk
                           checkpoints (CI kill/restart tests)

EXIT CODES:
  0  clean (daemon: shut down by the crash hook; client: request ok)
  2  usage errors, unreachable daemon, or a typed error response

Campaign outcome stores written by the daemon are byte-identical to the
same campaign run via `stlab` batch mode — interrupts included.
";

fn fail(msg: impl std::fmt::Display) -> ExitCode {
    eprintln!("{msg}");
    ExitCode::from(2)
}

/// Looks up the value after `flag`; exits 2 when the flag is present but
/// valueless. `None` when absent.
fn flag_value(argv: &[String], flag: &str) -> Result<Option<String>, ExitCode> {
    match argv.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => match argv.get(i + 1) {
            Some(v) => Ok(Some(v.clone())),
            None => Err(fail(format!("{flag} needs a value"))),
        },
    }
}

fn parsed(flag: &str, value: &str) -> Result<u64, ExitCode> {
    value.parse().map_err(|_| {
        fail(format!(
            "{flag} expects a non-negative integer, got {value:?}"
        ))
    })
}

fn client_verb(verb: &str, argv: &[String]) -> ExitCode {
    let addr = match flag_value(argv, "--addr") {
        Ok(Some(addr)) => addr,
        Ok(None) => return fail(format!("st-serve {verb} needs --addr ADDR")),
        Err(code) => return code,
    };
    let key = match flag_value(argv, "--key") {
        Ok(k) => k,
        Err(code) => return code,
    };
    let client = ServeClient::new(addr);
    let need_key = || fail(format!("st-serve {verb} needs --key KEY"));
    let result = match (verb, &key) {
        ("hello", _) => client.hello().map(|()| {
            println!("ok: {}", st_serve::PROTO);
        }),
        ("status", Some(key)) => client.status(key).map(|job| println!("{job}")),
        ("status", None) => client.jobs().map(|jobs| {
            for job in jobs {
                println!("{job}");
            }
        }),
        ("resume", Some(key)) => client.resume(key).map(|job| println!("{job}")),
        ("cancel", Some(key)) => client.cancel(key).map(|job| println!("{job}")),
        ("fetch", Some(key)) => client.fetch_store(key).map(|(job, store)| {
            let text = store.to_json_string();
            match flag_value(argv, "--out") {
                Ok(Some(path)) => {
                    if let Err(e) = std::fs::write(&path, &text) {
                        eprintln!("cannot write {path}: {e}");
                        std::process::exit(2);
                    }
                    eprintln!("{job}: wrote {} bytes to {path}", text.len());
                }
                Ok(None) => print!("{text}"),
                Err(_) => std::process::exit(2),
            }
        }),
        (_, None) => return need_key(),
        _ => unreachable!("verbs are dispatched by name"),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => fail(e),
    }
}

fn daemon(argv: &[String]) -> ExitCode {
    // Reject unknown flags up front: a typo must not half-configure a
    // daemon.
    let known = [
        "--listen",
        "--state",
        "--threads",
        "--chunk",
        "--max-pending",
        "--exit-after-chunks",
    ];
    let mut i = 0;
    while i < argv.len() {
        let arg = argv[i].as_str();
        if !known.contains(&arg) {
            return fail(format!("unknown flag {arg:?} (see st-serve --help)"));
        }
        i += 2; // every daemon flag takes a value; missing ones caught below
    }
    let listen = match flag_value(argv, "--listen") {
        Ok(Some(v)) => v,
        Ok(None) => return fail("daemon mode needs --listen ADDR (see st-serve --help)"),
        Err(code) => return code,
    };
    let state = match flag_value(argv, "--state") {
        Ok(Some(v)) => v,
        Ok(None) => return fail("daemon mode needs --state DIR"),
        Err(code) => return code,
    };
    let mut cfg = ServeConfig::new(state);
    match flag_value(argv, "--threads") {
        Ok(Some(v)) => match parsed("--threads", &v) {
            Ok(n) if n > 0 => cfg.threads = n as usize,
            Ok(_) => return fail("--threads needs at least 1"),
            Err(code) => return code,
        },
        Ok(None) => {}
        Err(code) => return code,
    }
    match flag_value(argv, "--chunk") {
        Ok(Some(v)) => match parsed("--chunk", &v) {
            Ok(n) if n > 0 => cfg.chunk = n as usize,
            Ok(_) => return fail("--chunk needs at least 1"),
            Err(code) => return code,
        },
        Ok(None) => {}
        Err(code) => return code,
    }
    match flag_value(argv, "--max-pending") {
        Ok(Some(v)) => match parsed("--max-pending", &v) {
            Ok(n) => cfg.max_pending = n as usize,
            Err(code) => return code,
        },
        Ok(None) => {}
        Err(code) => return code,
    }
    match flag_value(argv, "--exit-after-chunks") {
        Ok(Some(v)) => match parsed("--exit-after-chunks", &v) {
            Ok(n) if n > 0 => cfg.exit_after_chunks = Some(n),
            Ok(_) => return fail("--exit-after-chunks needs at least 1"),
            Err(code) => return code,
        },
        Ok(None) => {}
        Err(code) => return code,
    }
    let state_dir = cfg.state_dir.clone();
    let server = match Server::bind(&listen, cfg) {
        Ok(server) => server,
        Err(e) => return fail(format!("cannot bind {listen}: {e}")),
    };
    eprintln!(
        "st-serve: listening on {} (state: {})",
        server.local_addr(),
        state_dir.display()
    );
    server.run();
    eprintln!("st-serve: stopped (crash hook fired)");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() || argv.iter().any(|a| a == "--help" || a == "-h") {
        print!("{HELP}");
        return ExitCode::SUCCESS;
    }
    match argv[0].as_str() {
        verb @ ("hello" | "status" | "resume" | "cancel" | "fetch") => {
            client_verb(verb, &argv[1..])
        }
        _ => daemon(&argv),
    }
}
