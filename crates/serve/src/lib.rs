//! `st-serve`: the campaign engine as a long-running service.
//!
//! The batch drives (`stlab`, `Campaign::run_resumed`) run a sweep and
//! exit; this crate runs the same engine behind a TCP socket, so campaigns
//! are *submitted* and the daemon owns their lifecycle:
//!
//! - **Wire protocol** ([`protocol`], specified in `PROTOCOL.md`):
//!   canonical JSON ([`st_core::json`]) over length-prefixed frames
//!   ([`st_core::frame`]), one request frame and one response frame per
//!   connection. Verbs: `hello`, `submit`, `status`, `cancel`, `resume`,
//!   `fetch-outcomes`; failures are typed error responses (`busy`,
//!   `schema-mismatch`, `spec-mismatch`, …), never closed sockets.
//! - **Daemon** ([`server::Server`]): a persistent job queue in a state
//!   directory (`job-<key>.spec.json` + `job-<key>.store.json`), one
//!   campaign worker executing jobs FIFO through
//!   [`Campaign::run_chunked`](st_campaign::Campaign::run_chunked) with an
//!   atomically-rewritten [`OutcomeStore`](st_campaign::OutcomeStore)
//!   checkpoint after every chunk, backpressure (a bounded number of
//!   in-flight scenarios; excess submits get a typed `busy`), and
//!   cancellation at chunk boundaries. A killed daemon restarts from its
//!   state directory and resumes where the last checkpoint left off.
//! - **Client** ([`client::ServeClient`]): typed requests plus the
//!   submit→poll→fetch loop that `stlab --serve ADDR` routes every
//!   experiment campaign through.
//!
//! # The house invariant, served
//!
//! A campaign's outcome store is **byte-identical** whether executed via
//! `stlab` batch mode, one daemon worker, or a daemon killed and restarted
//! mid-campaign — chunk size, worker count, poll timing, and interrupt
//! history never show in the artifact. The chain: scenarios are hermetic,
//! outcomes merge in permanent-rank order, and the store inserts sorted by
//! `(campaign, rank)`, so store bytes are a function of the recorded
//! outcomes alone. `tests/serve.rs` asserts the kill→restart→resume bytes
//! in-process; CI's serve-smoke job asserts them end-to-end over real
//! processes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{ClientError, JobStatus, ServeClient, DEFAULT_POLL};
pub use protocol::{ErrorKind, JobState, Verb, JOB_SCHEMA, PROTO};
pub use server::{ServeConfig, Server};
