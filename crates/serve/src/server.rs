//! The daemon: a TCP accept loop, a persistent job table, and one campaign
//! worker draining the queue through [`Campaign::run_chunked`].
//!
//! # State directory
//!
//! Every accepted `submit` is persisted *before* it is acknowledged:
//! `job-<key>.spec.json` (schema [`JOB_SCHEMA`])
//! holds the campaign's canonical `(rank, scenario)` list, and
//! `job-<key>.store.json` is an ordinary [`OutcomeStore`] file the worker
//! rewrites atomically (write-temp-then-rename) after every chunk. A
//! restarted daemon rescans the directory, re-derives each job's progress
//! by matching the store against the spec (the same staleness-guarded
//! comparison `--resume` uses), and continues — killing the process at any
//! point loses at most the chunk in flight, never the store's integrity.
//!
//! # Determinism
//!
//! The worker executes jobs through the same engine as `stlab` batch mode,
//! so a job's finished store is **byte-identical** whether it ran in one
//! daemon process, across a kill/restart, or via `stlab` without a daemon
//! at all (`tests/serve.rs` and CI's serve-smoke job assert the bytes).

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use st_campaign::{Campaign, ChunkControl, OutcomeStore};
use st_core::frame::{read_frame, write_frame};
use st_core::Json;

use crate::protocol::{
    decode_entries, error_response, job_spec, ok_response, validate_key, ErrorKind, JobState, Verb,
    JOB_SCHEMA, PROTO,
};

/// Daemon configuration (see `st-serve --help` for the CLI mapping).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Directory for persisted job specs and outcome stores (created if
    /// missing).
    pub state_dir: PathBuf,
    /// Worker threads per campaign chunk (`usize::MAX` = one per hardware
    /// thread). Results are thread-count independent.
    pub threads: usize,
    /// Scenarios per checkpoint: the store is rewritten and cancellation
    /// honored at every multiple of this.
    pub chunk: usize,
    /// Backpressure bound: a `submit` whose scenarios would push the total
    /// queued+running count past this is refused with a typed `busy` error.
    pub max_pending: usize,
    /// Test/CI crash hook: after this many chunk checkpoints the daemon
    /// stops as if killed (no cleanup beyond what every chunk does). A
    /// fully-reused job costs one checkpoint too.
    pub exit_after_chunks: Option<u64>,
}

impl ServeConfig {
    /// Defaults: hardware-width workers, chunks of 8, 1M scenarios of
    /// backpressure headroom, no crash hook.
    pub fn new(state_dir: impl Into<PathBuf>) -> Self {
        ServeConfig {
            state_dir: state_dir.into(),
            threads: usize::MAX,
            chunk: 8,
            max_pending: 1_000_000,
            exit_after_chunks: None,
        }
    }
}

/// One submitted campaign.
struct Job {
    key: String,
    /// The canonical job-spec document — the identity a re-`submit` is
    /// compared against.
    spec: Json,
    campaign: Campaign,
    state: JobState,
    /// Set by `cancel` while running; honored at the next chunk boundary.
    cancel: bool,
    completed: usize,
    total: usize,
    /// The store's load-error text when [`JobState::Broken`].
    store_error: Option<String>,
}

struct Shared {
    cfg: ServeConfig,
    addr: SocketAddr,
    jobs: Mutex<Vec<Job>>,
    work: Condvar,
    shutdown: AtomicBool,
    chunks_left: Mutex<Option<u64>>,
}

/// A bound daemon; [`run`](Server::run) blocks until the crash hook fires
/// (or forever without one — kill the process to stop it, that's the
/// supported and tested shutdown path).
pub struct Server {
    listener: TcpListener,
    shared: Shared,
}

impl Server {
    /// Creates the state directory, loads persisted jobs, and binds
    /// `addr` (use port 0 to let the OS pick; see
    /// [`local_addr`](Server::local_addr)).
    pub fn bind(addr: &str, cfg: ServeConfig) -> std::io::Result<Server> {
        std::fs::create_dir_all(&cfg.state_dir)?;
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let jobs = load_jobs(&cfg.state_dir);
        let chunks_left = Mutex::new(cfg.exit_after_chunks);
        Ok(Server {
            listener,
            shared: Shared {
                addr: local,
                jobs: Mutex::new(jobs),
                work: Condvar::new(),
                shutdown: AtomicBool::new(false),
                chunks_left,
                cfg,
            },
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Serves requests and executes jobs until shut down by the crash
    /// hook. One frame per connection; requests are handled serially, the
    /// campaign worker runs concurrently.
    pub fn run(self) {
        let shared = &self.shared;
        std::thread::scope(|scope| {
            scope.spawn(|| worker(shared));
            for stream in self.listener.incoming() {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match stream {
                    Ok(mut sock) => handle_conn(shared, &mut sock),
                    Err(e) => eprintln!("st-serve: accept error: {e}"),
                }
            }
            // Unblock the worker if the accept loop exits first.
            shared.shutdown.store(true, Ordering::SeqCst);
            shared.work.notify_all();
        });
    }
}

fn spec_path(dir: &Path, key: &str) -> PathBuf {
    dir.join(format!("job-{key}.spec.json"))
}

fn store_path(dir: &Path, key: &str) -> PathBuf {
    dir.join(format!("job-{key}.store.json"))
}

/// Atomic store checkpoint: write to a temp file, then rename over the
/// real one — a kill mid-write can never truncate the previous checkpoint.
fn checkpoint(store: &OutcomeStore, path: &Path) -> std::io::Result<()> {
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, store.to_json_string())?;
    std::fs::rename(&tmp, path)
}

/// Rebuilds the job table from the state directory (sorted by file name
/// for a deterministic table order). Unreadable specs are skipped loudly;
/// unreadable *stores* produce [`JobState::Broken`] jobs that surface the
/// store's own error text on every request against them.
fn load_jobs(dir: &Path) -> Vec<Job> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut names: Vec<String> = entries
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| n.starts_with("job-") && n.ends_with(".spec.json"))
        .collect();
    names.sort();
    let mut jobs = Vec::new();
    for name in names {
        match load_job(dir, &name) {
            Ok(job) => jobs.push(job),
            Err(e) => eprintln!("st-serve: skipping {name}: {e}"),
        }
    }
    jobs
}

fn load_job(dir: &Path, name: &str) -> Result<Job, String> {
    let text = std::fs::read_to_string(dir.join(name)).map_err(|e| e.to_string())?;
    let doc = Json::parse(&text).map_err(|e| e.to_string())?;
    let schema = doc.get("schema").and_then(Json::as_str).unwrap_or("");
    if schema != JOB_SCHEMA {
        return Err(format!(
            "job spec schema mismatch: file has {schema:?}, this build reads {JOB_SCHEMA:?}"
        ));
    }
    let key = doc
        .get("key")
        .and_then(Json::as_str)
        .ok_or("job spec has no \"key\"")?
        .to_string();
    validate_key(&key)?;
    let entries = doc.get("entries").ok_or("job spec has no \"entries\"")?;
    let campaign = Campaign::from_ranked(decode_entries(entries)?)?;
    let spec = job_spec(&key, &campaign);
    let total = campaign.len();

    let store_file = store_path(dir, &key);
    let (completed, state, store_error) = if store_file.exists() {
        match OutcomeStore::load(&store_file) {
            Ok(store) => {
                let mut pending = campaign.clone();
                let completed = pending.skip_completed(&store, &key).len();
                let state = if completed == total {
                    JobState::Done
                } else {
                    JobState::Interrupted
                };
                (completed, state, None)
            }
            Err(e) => (0, JobState::Broken, Some(e.to_string())),
        }
    } else {
        (0, JobState::Interrupted, None)
    };
    Ok(Job {
        key,
        spec,
        campaign,
        state,
        cancel: false,
        completed,
        total,
        store_error,
    })
}

// ---------------------------------------------------------------------------
// The campaign worker.
// ---------------------------------------------------------------------------

fn worker(shared: &Shared) {
    loop {
        let (key, campaign) = {
            let mut jobs = shared.jobs.lock().expect("job table lock");
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(job) = jobs.iter_mut().find(|j| j.state == JobState::Queued) {
                    job.state = JobState::Running;
                    break (job.key.clone(), job.campaign.clone());
                }
                jobs = shared.work.wait(jobs).expect("job table lock");
            }
        };
        run_job(shared, &key, &campaign);
        if shared.shutdown.load(Ordering::SeqCst) {
            // Wake the accept loop so the whole daemon exits (the crash
            // hook simulates a kill; a poke connection is how the blocking
            // `incoming()` notices).
            let _ = TcpStream::connect_timeout(&shared.addr, Duration::from_millis(200));
            return;
        }
    }
}

fn run_job(shared: &Shared, key: &str, campaign: &Campaign) {
    let path = store_path(&shared.cfg.state_dir, key);
    // A missing or unreadable store just means "run from scratch" here:
    // Broken jobs never reach Queued, so an Err is a fresh job whose store
    // file does not exist yet.
    let resume = OutcomeStore::load(&path).ok();
    let mut record = OutcomeStore::new();
    let (_, finished) = campaign.run_chunked(
        shared.cfg.threads,
        key,
        resume.as_ref(),
        &mut record,
        shared.cfg.chunk,
        |store, completed, _total| {
            if let Err(e) = checkpoint(store, &path) {
                eprintln!("st-serve: cannot checkpoint {}: {e}", path.display());
            }
            let mut jobs = shared.jobs.lock().expect("job table lock");
            let cancelled = match jobs.iter_mut().find(|j| j.key == key) {
                Some(job) => {
                    job.completed = completed;
                    job.cancel
                }
                None => false,
            };
            drop(jobs);
            if crash_hook_fired(shared) {
                shared.shutdown.store(true, Ordering::SeqCst);
                ChunkControl::Stop
            } else if cancelled {
                ChunkControl::Stop
            } else {
                ChunkControl::Continue
            }
        },
    );
    let mut jobs = shared.jobs.lock().expect("job table lock");
    if let Some(job) = jobs.iter_mut().find(|j| j.key == key) {
        job.state = if finished {
            job.completed = job.total;
            JobState::Done
        } else if shared.shutdown.load(Ordering::SeqCst) {
            JobState::Interrupted
        } else {
            JobState::Cancelled
        };
        job.cancel = false;
    }
}

/// Decrements the crash-hook counter; `true` when it just hit zero.
fn crash_hook_fired(shared: &Shared) -> bool {
    let mut left = shared.chunks_left.lock().expect("crash hook lock");
    match left.as_mut() {
        None => false,
        Some(n) => {
            *n = n.saturating_sub(1);
            *n == 0
        }
    }
}

// ---------------------------------------------------------------------------
// Request handling.
// ---------------------------------------------------------------------------

fn handle_conn(shared: &Shared, sock: &mut TcpStream) {
    let _ = sock.set_read_timeout(Some(Duration::from_secs(10)));
    let _ = sock.set_write_timeout(Some(Duration::from_secs(10)));
    let Ok(doc) = read_frame(sock) else {
        return; // poke connections and dropped peers land here
    };
    let resp = dispatch(shared, &doc);
    let _ = write_frame(sock, &resp);
}

fn dispatch(shared: &Shared, doc: &Json) -> Json {
    let Some(proto) = doc.get("proto").and_then(Json::as_str) else {
        return error_response(ErrorKind::Malformed, "request has no \"proto\" field");
    };
    if proto != PROTO {
        return error_response(
            ErrorKind::SchemaMismatch,
            format!("protocol mismatch: peer speaks {proto:?}, this daemon speaks {PROTO:?}"),
        );
    }
    let Some(verb) = doc.get("verb").and_then(Json::as_str) else {
        return error_response(ErrorKind::Malformed, "request has no \"verb\" field");
    };
    match Verb::parse(verb) {
        None => {
            let known: Vec<&str> = Verb::ALL.into_iter().map(Verb::wire).collect();
            error_response(
                ErrorKind::UnknownVerb,
                format!("unknown verb {verb:?} (known: {})", known.join(", ")),
            )
        }
        Some(Verb::Hello) => ok_response([
            ("server", Json::str("st-serve")),
            ("store_schema", Json::str(st_campaign::store::SCHEMA)),
        ]),
        Some(Verb::Submit) => submit(shared, doc),
        Some(Verb::Status) => status(shared, doc),
        Some(Verb::Cancel) => cancel(shared, doc),
        Some(Verb::Resume) => resume(shared, doc),
        Some(Verb::FetchOutcomes) => fetch_outcomes(shared, doc),
    }
}

fn job_fields(job: &Job) -> Json {
    Json::obj([
        ("key", Json::str(job.key.as_str())),
        ("state", Json::str(job.state.wire())),
        ("total", Json::U64(job.total as u64)),
        ("completed", Json::U64(job.completed as u64)),
    ])
}

/// Extracts and validates the request's `key` field; `Err` is the ready
/// error response.
fn required_key(doc: &Json) -> Result<String, Json> {
    let Some(key) = doc.get("key").and_then(Json::as_str) else {
        return Err(error_response(
            ErrorKind::Malformed,
            "request has no \"key\" field",
        ));
    };
    match validate_key(key) {
        Ok(()) => Ok(key.to_string()),
        Err(msg) => Err(error_response(ErrorKind::Malformed, msg)),
    }
}

fn submit(shared: &Shared, doc: &Json) -> Json {
    let key = match required_key(doc) {
        Ok(key) => key,
        Err(resp) => return resp,
    };
    let Some(entries) = doc.get("entries") else {
        return error_response(ErrorKind::Malformed, "submit has no \"entries\" field");
    };
    let entries = match decode_entries(entries) {
        Ok(entries) => entries,
        Err(msg) => return error_response(ErrorKind::Malformed, msg),
    };
    if entries.is_empty() {
        return error_response(
            ErrorKind::Malformed,
            "a campaign needs at least one scenario",
        );
    }
    let campaign = match Campaign::from_ranked(entries) {
        Ok(campaign) => campaign,
        Err(msg) => return error_response(ErrorKind::Malformed, msg),
    };
    let spec = job_spec(&key, &campaign);
    let total = campaign.len();

    let mut jobs = shared.jobs.lock().expect("job table lock");
    if let Some(job) = jobs.iter_mut().find(|j| j.key == key) {
        if job.spec != spec {
            return error_response(
                ErrorKind::SpecMismatch,
                format!(
                    "job {key:?} already exists with a different campaign spec — \
                     submit under a new key instead of mutating a sweep's identity"
                ),
            );
        }
        if let Some(msg) = &job.store_error {
            return error_response(ErrorKind::SchemaMismatch, msg.clone());
        }
        // Idempotent re-submit: parked jobs requeue (the resume-after-
        // restart path), live and finished jobs just report.
        if matches!(job.state, JobState::Interrupted | JobState::Cancelled) {
            job.state = JobState::Queued;
            job.cancel = false;
            shared.work.notify_all();
        }
        return ok_response([("job", job_fields(job))]);
    }

    let in_flight: usize = jobs
        .iter()
        .filter(|j| matches!(j.state, JobState::Queued | JobState::Running))
        .map(|j| j.total - j.completed)
        .sum();
    if in_flight + total > shared.cfg.max_pending {
        return error_response(
            ErrorKind::Busy,
            format!(
                "daemon is at capacity: {in_flight} scenario(s) in flight, {total} more \
                 would exceed --max-pending {} — retry later",
                shared.cfg.max_pending
            ),
        );
    }

    // Persist before acknowledging: a confirmed submit survives a kill.
    let path = spec_path(&shared.cfg.state_dir, &key);
    let tmp = path.with_extension("json.tmp");
    let written =
        std::fs::write(&tmp, spec.to_string() + "\n").and_then(|()| std::fs::rename(&tmp, &path));
    if let Err(e) = written {
        return error_response(ErrorKind::Internal, format!("cannot persist job spec: {e}"));
    }
    jobs.push(Job {
        key,
        spec,
        campaign,
        state: JobState::Queued,
        cancel: false,
        completed: 0,
        total,
        store_error: None,
    });
    shared.work.notify_all();
    ok_response([("job", job_fields(jobs.last().expect("just pushed")))])
}

fn status(shared: &Shared, doc: &Json) -> Json {
    let jobs = shared.jobs.lock().expect("job table lock");
    match doc.get("key").and_then(Json::as_str) {
        Some(key) => match jobs.iter().find(|j| j.key == key) {
            Some(job) => ok_response([("job", job_fields(job))]),
            None => error_response(ErrorKind::UnknownJob, format!("no job under key {key:?}")),
        },
        None => {
            let mut sorted: Vec<&Job> = jobs.iter().collect();
            sorted.sort_by(|a, b| a.key.cmp(&b.key));
            ok_response([(
                "jobs",
                Json::Arr(sorted.into_iter().map(job_fields).collect()),
            )])
        }
    }
}

fn cancel(shared: &Shared, doc: &Json) -> Json {
    let key = match required_key(doc) {
        Ok(key) => key,
        Err(resp) => return resp,
    };
    let mut jobs = shared.jobs.lock().expect("job table lock");
    match jobs.iter_mut().find(|j| j.key == key) {
        None => error_response(ErrorKind::UnknownJob, format!("no job under key {key:?}")),
        Some(job) => {
            match job.state {
                JobState::Queued => job.state = JobState::Cancelled,
                JobState::Running => job.cancel = true,
                _ => {}
            }
            ok_response([
                ("job", job_fields(job)),
                ("cancel_requested", Json::Bool(job.cancel)),
            ])
        }
    }
}

fn resume(shared: &Shared, doc: &Json) -> Json {
    let key = match required_key(doc) {
        Ok(key) => key,
        Err(resp) => return resp,
    };
    let mut jobs = shared.jobs.lock().expect("job table lock");
    match jobs.iter_mut().find(|j| j.key == key) {
        None => error_response(ErrorKind::UnknownJob, format!("no job under key {key:?}")),
        Some(job) => {
            if let Some(msg) = &job.store_error {
                return error_response(ErrorKind::SchemaMismatch, msg.clone());
            }
            if matches!(job.state, JobState::Interrupted | JobState::Cancelled) {
                job.state = JobState::Queued;
                job.cancel = false;
                shared.work.notify_all();
            }
            ok_response([("job", job_fields(job))])
        }
    }
}

fn fetch_outcomes(shared: &Shared, doc: &Json) -> Json {
    let key = match required_key(doc) {
        Ok(key) => key,
        Err(resp) => return resp,
    };
    let jobs = shared.jobs.lock().expect("job table lock");
    let Some(job) = jobs.iter().find(|j| j.key == key) else {
        return error_response(ErrorKind::UnknownJob, format!("no job under key {key:?}"));
    };
    if let Some(msg) = &job.store_error {
        return error_response(ErrorKind::SchemaMismatch, msg.clone());
    }
    let fields = job_fields(job);
    let path = store_path(&shared.cfg.state_dir, &key);
    // Renames are atomic, so reading outside the checkpoint path sees a
    // complete store — the previous one at worst.
    let store_doc = if path.exists() {
        let loaded = std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|text| Json::parse(&text).map_err(|e| e.to_string()));
        match loaded {
            Ok(doc) => doc,
            Err(e) => {
                return error_response(
                    ErrorKind::Internal,
                    format!("cannot read outcome store for {key:?}: {e}"),
                )
            }
        }
    } else {
        Json::parse(&OutcomeStore::new().to_json_string()).expect("empty store is valid JSON")
    };
    ok_response([("job", fields), ("store", store_doc)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol;
    use st_campaign::{
        policy_from_spec, FdAbi, FdDetector, GeneratorSpec, Scenario, TimeoutPolicySpec, Workload,
    };
    use st_core::Universe;

    /// A fresh `Shared` over a clean state directory — the daemon minus
    /// its accept loop and worker, so the request handlers can be driven
    /// deterministically (no job ever leaves `Queued`).
    fn shared_with(dir_name: &str, max_pending: usize) -> Shared {
        let state = std::env::temp_dir().join(dir_name);
        let _ = std::fs::remove_dir_all(&state);
        std::fs::create_dir_all(&state).unwrap();
        let mut cfg = ServeConfig::new(&state);
        cfg.max_pending = max_pending;
        Shared {
            addr: "127.0.0.1:1".parse().unwrap(),
            jobs: Mutex::new(load_jobs(&state)),
            work: Condvar::new(),
            shutdown: AtomicBool::new(false),
            chunks_left: Mutex::new(None),
            cfg,
        }
    }

    fn tiny_campaign(seeds: std::ops::Range<u64>) -> Campaign {
        let mut campaign = Campaign::new();
        for seed in seeds {
            campaign.push(Scenario::new(
                format!("tiny/seed{seed}"),
                Universe::new(3).unwrap(),
                GeneratorSpec::round_robin(),
                Workload::FdConvergence {
                    k: 1,
                    t: 1,
                    policy: policy_from_spec(TimeoutPolicySpec::Increment),
                    abi: FdAbi::MachineSlot,
                    detector: FdDetector::SetBased,
                    certify_membership: false,
                },
                1_000,
                seed,
            ));
        }
        campaign
    }

    fn submit_doc(key: &str, campaign: &Campaign) -> Json {
        protocol::request(
            Verb::Submit,
            [
                ("key", Json::str(key)),
                ("entries", protocol::campaign_entries(campaign)),
            ],
        )
    }

    fn error_kind(resp: &Json) -> Option<&str> {
        resp.get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str)
    }

    fn job_state(resp: &Json) -> Option<&str> {
        resp.get("job")
            .and_then(|j| j.get("state"))
            .and_then(Json::as_str)
    }

    #[test]
    fn submit_cancel_resume_lifecycle_without_a_worker() {
        let shared = shared_with("st-serve-lifecycle-test", 10);
        let campaign = tiny_campaign(0..4);

        // Fresh submit: queued, spec persisted before the ack.
        let resp = dispatch(&shared, &submit_doc("job", &campaign));
        assert_eq!(job_state(&resp), Some("queued"), "{resp:?}");
        assert!(spec_path(&shared.cfg.state_dir, "job").exists());

        // Identical re-submit is idempotent.
        let resp = dispatch(&shared, &submit_doc("job", &campaign));
        assert_eq!(job_state(&resp), Some("queued"));
        assert_eq!(shared.jobs.lock().unwrap().len(), 1);

        // Same key, different campaign: the staleness guard refuses.
        let resp = dispatch(&shared, &submit_doc("job", &tiny_campaign(0..3)));
        assert_eq!(error_kind(&resp), Some("spec-mismatch"));

        // Backpressure: 4 in flight + 7 more > 10.
        let resp = dispatch(&shared, &submit_doc("big", &tiny_campaign(10..17)));
        assert_eq!(error_kind(&resp), Some("busy"));

        // Cancel a queued job, resume it back into the queue.
        let cancel = protocol::request(Verb::Cancel, [("key", Json::str("job"))]);
        assert_eq!(job_state(&dispatch(&shared, &cancel)), Some("cancelled"));
        let resume = protocol::request(Verb::Resume, [("key", Json::str("job"))]);
        assert_eq!(job_state(&dispatch(&shared, &resume)), Some("queued"));

        // Fetching before anything ran returns an empty store.
        let fetch = protocol::request(Verb::FetchOutcomes, [("key", Json::str("job"))]);
        let resp = dispatch(&shared, &fetch);
        let store = resp.get("store").expect("store field");
        assert_eq!(
            store
                .get("entries")
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(0)
        );

        // Unknown keys are typed refusals.
        let status = protocol::request(Verb::Status, [("key", Json::str("nope"))]);
        assert_eq!(error_kind(&dispatch(&shared, &status)), Some("unknown-job"));
        let bad_key = protocol::request(Verb::Status, [("key", Json::str("a/b"))]);
        assert_eq!(
            error_kind(&dispatch(&shared, &bad_key)),
            Some("unknown-job")
        );
    }

    #[test]
    fn restart_scan_derives_done_interrupted_and_broken_states() {
        let state = std::env::temp_dir().join("st-serve-rescan-test");
        let _ = std::fs::remove_dir_all(&state);
        std::fs::create_dir_all(&state).unwrap();

        // "done": spec + complete store.
        let finished = tiny_campaign(0..2);
        std::fs::write(
            spec_path(&state, "done-job"),
            protocol::job_spec("done-job", &finished).to_string(),
        )
        .unwrap();
        let mut store = OutcomeStore::new();
        finished.run_resumed(1, "done-job", None, Some(&mut store));
        store.save(store_path(&state, "done-job")).unwrap();

        // "interrupted": spec + half the store.
        let half_done = tiny_campaign(0..4);
        std::fs::write(
            spec_path(&state, "half-job"),
            protocol::job_spec("half-job", &half_done).to_string(),
        )
        .unwrap();
        let mut partial = OutcomeStore::new();
        half_done.run_resumed(1, "half-job", None, Some(&mut partial));
        partial.retain(|idx, _| idx < 2);
        partial.save(store_path(&state, "half-job")).unwrap();

        // "broken": spec + a store from another schema version.
        std::fs::write(
            spec_path(&state, "broken-job"),
            protocol::job_spec("broken-job", &finished).to_string(),
        )
        .unwrap();
        let stale = store
            .to_json_string()
            .replace("outcome-store-v2", "outcome-store-v1");
        std::fs::write(store_path(&state, "broken-job"), stale).unwrap();

        let jobs = load_jobs(&state);
        let by_key = |key: &str| jobs.iter().find(|j| j.key == key).expect(key);
        assert_eq!(by_key("done-job").state, JobState::Done);
        assert_eq!(by_key("done-job").completed, 2);
        assert_eq!(by_key("half-job").state, JobState::Interrupted);
        assert_eq!(by_key("half-job").completed, 2);
        let broken = by_key("broken-job");
        assert_eq!(broken.state, JobState::Broken);
        let text = broken.store_error.as_deref().unwrap();
        assert!(text.contains("outcome store schema mismatch"), "{text}");

        // Every request against the broken job surfaces the store's text.
        let shared = Shared {
            addr: "127.0.0.1:1".parse().unwrap(),
            jobs: Mutex::new(jobs),
            work: Condvar::new(),
            shutdown: AtomicBool::new(false),
            chunks_left: Mutex::new(None),
            cfg: ServeConfig::new(&state),
        };
        let resubmit = dispatch(&shared, &submit_doc("broken-job", &finished));
        assert_eq!(error_kind(&resubmit), Some("schema-mismatch"));
        let msg = resubmit
            .get("error")
            .and_then(|e| e.get("message"))
            .and_then(Json::as_str)
            .unwrap();
        assert!(msg.contains("outcome store schema mismatch"), "{msg}");
        let resume = protocol::request(Verb::Resume, [("key", Json::str("broken-job"))]);
        assert_eq!(
            error_kind(&dispatch(&shared, &resume)),
            Some("schema-mismatch")
        );
        let fetch = protocol::request(Verb::FetchOutcomes, [("key", Json::str("broken-job"))]);
        assert_eq!(
            error_kind(&dispatch(&shared, &fetch)),
            Some("schema-mismatch")
        );
    }

    #[test]
    fn dispatch_rejects_missing_proto_and_unknown_verbs() {
        let cfg = ServeConfig::new(std::env::temp_dir().join("st-serve-dispatch-test"));
        let shared = Shared {
            addr: "127.0.0.1:1".parse().unwrap(),
            jobs: Mutex::new(Vec::new()),
            work: Condvar::new(),
            shutdown: AtomicBool::new(false),
            chunks_left: Mutex::new(None),
            cfg,
        };
        let err = |doc: &Json| {
            let resp = dispatch(&shared, doc);
            resp.get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Json::as_str)
                .map(str::to_string)
        };
        assert_eq!(
            err(&Json::obj([("verb", Json::str("hello"))])),
            Some("malformed".into())
        );
        assert_eq!(
            err(&Json::obj([
                ("proto", Json::str("st-serve/v0")),
                ("verb", Json::str("hello")),
            ])),
            Some("schema-mismatch".into())
        );
        let mut bad_verb = protocol::request(Verb::Hello, []);
        if let Json::Obj(members) = &mut bad_verb {
            members[1].1 = Json::str("fetch");
        }
        assert_eq!(err(&bad_verb), Some("unknown-verb".into()));
        let hello = dispatch(&shared, &protocol::request(Verb::Hello, []));
        assert_eq!(hello.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            hello.get("store_schema").and_then(Json::as_str),
            Some(st_campaign::store::SCHEMA)
        );
    }
}
