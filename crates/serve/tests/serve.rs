//! End-to-end daemon tests over real TCP sockets.
//!
//! The headline test is the PR's acceptance criterion: a campaign submitted
//! to `st-serve`, with the daemon killed (via the `exit_after_chunks` crash
//! hook) and restarted mid-run, produces an `OutcomeStore` byte-identical
//! to the same campaign run via the batch drive — different chunk sizes and
//! worker counts across the two daemon incarnations included.

use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

use st_campaign::{
    policy_from_spec, Campaign, FdAbi, FdDetector, GeneratorSpec, OutcomeStore, Scenario,
    TimeoutPolicySpec, Workload,
};
use st_core::frame::{read_frame, write_frame};
use st_core::{Json, Universe};
use st_serve::{ClientError, JobState, ServeClient, ServeConfig, Server, PROTO};

/// A clean per-process state directory under the system temp dir.
fn state_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("st-serve-e2e-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// An 8-scenario FD-convergence campaign, small enough that a full run is
/// fast but large enough that chunks of 2 leave a real checkpoint trail.
fn fd_campaign() -> Campaign {
    let mut campaign = Campaign::new();
    for seed in 0..8u64 {
        campaign.push(Scenario::new(
            format!("served/seed{seed}"),
            Universe::new(3).unwrap(),
            GeneratorSpec::round_robin(),
            Workload::FdConvergence {
                k: 1,
                t: 1,
                policy: policy_from_spec(TimeoutPolicySpec::Increment),
                abi: FdAbi::MachineSlot,
                detector: FdDetector::SetBased,
                certify_membership: false,
            },
            2_000,
            seed,
        ));
    }
    campaign
}

/// Binds a daemon on an OS-assigned port and runs it on a background
/// thread; returns the client address. Daemons without a crash hook run
/// until the test process exits.
fn spawn_daemon(cfg: ServeConfig) -> (String, std::thread::JoinHandle<()>) {
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

#[test]
fn killed_and_restarted_daemon_reproduces_batch_store_bytes() {
    let campaign = fd_campaign();

    // The batch reference: `stlab`'s drive, no daemon involved.
    let mut batch = OutcomeStore::new();
    let batch_outcomes = campaign.run_resumed(2, "job", None, Some(&mut batch));

    let state = state_dir("restart");
    let store_file = state.join("job-job.store.json");

    // Incarnation 1: chunks of 2, one worker, killed by the crash hook
    // after the second checkpoint — mid-campaign, 4 of 8 scenarios done.
    let mut cfg = ServeConfig::new(&state);
    cfg.chunk = 2;
    cfg.threads = 1;
    cfg.exit_after_chunks = Some(2);
    let (addr, handle) = spawn_daemon(cfg);
    let client = ServeClient::new(&addr);
    let died = client.run_campaign("job", &campaign, Duration::from_millis(5));
    assert!(died.is_err(), "the daemon died mid-run: {died:?}");
    handle.join().expect("incarnation 1 exits");

    // The surviving checkpoint is a complete, loadable store of exactly
    // the chunks that finished.
    let checkpoint = OutcomeStore::load(&store_file).expect("checkpoint survives the kill");
    assert_eq!(checkpoint.len(), 4, "two chunks of two checkpointed");

    // Incarnation 2: same state directory, different chunk size and worker
    // count. Re-submitting the identical spec requeues the interrupted job
    // and it runs to completion.
    let mut cfg = ServeConfig::new(&state);
    cfg.chunk = 3;
    cfg.threads = 2;
    let (addr, _handle) = spawn_daemon(cfg);
    let client = ServeClient::new(&addr);
    let outcomes = client
        .run_campaign("job", &campaign, Duration::from_millis(5))
        .expect("restarted daemon finishes the job");

    // Byte-identity, three ways: the outcomes, the daemon's store file,
    // and the store fetched over the wire.
    assert_eq!(format!("{outcomes:#?}"), format!("{batch_outcomes:#?}"));
    let file = std::fs::read_to_string(&store_file).unwrap();
    assert_eq!(file, batch.to_json_string(), "state-dir store bytes");
    let (job, fetched) = client.fetch_store("job").unwrap();
    assert_eq!(job.state, JobState::Done);
    assert_eq!(job.completed, 8);
    assert_eq!(
        fetched.to_json_string(),
        batch.to_json_string(),
        "fetched store bytes"
    );
}

#[test]
fn unreachable_daemon_is_a_typed_connect_error() {
    // Nothing listens on the discard port; stlab prints this exact text
    // before exiting 2.
    let client = ServeClient::new("127.0.0.1:9");
    let err = client.hello().unwrap_err();
    assert!(matches!(err, ClientError::Connect { .. }), "{err:?}");
    assert!(
        err.to_string()
            .starts_with("cannot reach st-serve at 127.0.0.1:9: "),
        "{err}"
    );
}

#[test]
fn raw_frames_get_typed_protocol_errors() {
    let (addr, _handle) = spawn_daemon(ServeConfig::new(state_dir("raw")));

    // A peer speaking a future protocol version gets a typed refusal that
    // names both versions, not a closed socket.
    let mut sock = TcpStream::connect(&addr).unwrap();
    let req = Json::obj([
        ("proto", Json::str("st-serve/v2")),
        ("verb", Json::str("hello")),
    ]);
    write_frame(&mut sock, &req).unwrap();
    let resp = read_frame(&mut sock).unwrap();
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
    let error = resp.get("error").expect("typed error");
    assert_eq!(
        error.get("kind").and_then(Json::as_str),
        Some("schema-mismatch")
    );
    let message = error.get("message").and_then(Json::as_str).unwrap();
    assert!(
        message.contains("st-serve/v2") && message.contains(PROTO),
        "{message}"
    );

    // And a well-formed hello on a fresh connection succeeds.
    let mut sock = TcpStream::connect(&addr).unwrap();
    let req = Json::obj([("proto", Json::str(PROTO)), ("verb", Json::str("hello"))]);
    write_frame(&mut sock, &req).unwrap();
    let resp = read_frame(&mut sock).unwrap();
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
}
