//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no network access, so this vendored shim
//! implements the API subset the workspace's benches use — benchmark
//! groups, [`Bencher::iter`], [`BenchmarkId`], [`Throughput`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — with *real*
//! measurements: per-benchmark calibration, multiple timed samples, median
//! selection, and a machine-readable JSON report per benchmark under
//! `target/criterion-shim/`.
//!
//! It is not statistically equivalent to criterion (no bootstrap, no
//! outlier classification), but it is deterministic in interface and good
//! enough to track order-of-magnitude perf trajectories in CI-less
//! environments. Swap the workspace dependency back to crates.io criterion
//! and every bench compiles unchanged.
//!
//! Environment knobs:
//! - `CRITERION_SHIM_BUDGET_MS` — wall-clock budget per benchmark
//!   (default 3000).
//! - `CRITERION_SHIM_SAMPLES` — override sample count for every group.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness state: the CLI filter plus the report directory.
pub struct Criterion {
    filter: Option<String>,
    out_dir: PathBuf,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            filter: cli_filter(),
            out_dir: workspace_root().join("target").join("criterion-shim"),
        }
    }
}

/// The benchmark filter `cargo bench -- <filter>` forwards: the first
/// non-flag CLI argument (cargo itself injects flags like `--bench`).
/// Exposed so bench binaries with custom side effects (report emitters)
/// can honor the same filter the harness applies.
pub fn cli_filter() -> Option<String> {
    std::env::args().skip(1).find(|a| !a.starts_with('-'))
}

/// The workspace root: the nearest ancestor of the current directory
/// holding a `Cargo.lock` (falls back to the current directory). All
/// benches share it for report output.
pub fn workspace_root() -> PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    cwd.ancestors()
        .find(|d| d.join("Cargo.lock").exists())
        .map(|d| d.to_path_buf())
        .unwrap_or(cwd)
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
            throughput: None,
        }
    }
}

/// Throughput annotation for a group (subset of criterion's enum).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A parameterized benchmark identifier (`function_name/parameter`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `name/param`.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// A group of related benchmarks sharing sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares the per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Measurement time is accepted for source compatibility; the shim uses
    /// its own budget (see crate docs).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run_one(&id.id, &mut f);
        self
    }

    /// Runs one benchmark with an explicit input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.run_one(&id.id, &mut |b| f(b, input));
        self
    }

    fn run_one(&mut self, bench: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, bench);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let budget = Duration::from_millis(env_u64("CRITERION_SHIM_BUDGET_MS", 3000));
        let samples = (env_u64("CRITERION_SHIM_SAMPLES", self.sample_size as u64) as usize).max(1);

        // Calibration sample: one iteration, also serves as warmup.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let once = b.elapsed.max(Duration::from_nanos(1));
        // Scale iterations so one sample runs ≥ ~5 ms (cheap ops) while a
        // whole run of `samples` stays near the budget (expensive ops).
        let per_sample_target = (budget / (samples as u32)).min(Duration::from_millis(200));
        let target = per_sample_target.max(Duration::from_millis(5));
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let started = Instant::now();
        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(samples);
        for taken in 0..samples {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            per_iter_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
            if started.elapsed() > budget && taken + 1 >= 2 {
                break;
            }
        }
        per_iter_ns.sort_by(|a, z| a.total_cmp(z));
        let median = per_iter_ns[per_iter_ns.len() / 2];
        let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;

        let rate = self.throughput.map(|t| match t {
            Throughput::Elements(n) => (n as f64 * 1e9 / median, "elem/s"),
            Throughput::Bytes(n) => (n as f64 * 1e9 / median, "B/s"),
        });
        match rate {
            Some((r, unit)) => println!(
                "{full:<56} time: [{}]  thrpt: [{} {unit}]",
                fmt_ns(median),
                fmt_rate(r)
            ),
            None => println!("{full:<56} time: [{}]", fmt_ns(median)),
        }
        self.write_report(&full, median, mean, per_iter_ns.len(), iters);
    }

    fn write_report(&self, full: &str, median: f64, mean: f64, samples: usize, iters: u64) {
        let dir = &self.criterion.out_dir;
        if fs::create_dir_all(dir).is_err() {
            return;
        }
        let fname: String = full
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        let (tp_kind, tp_n) = match self.throughput {
            Some(Throughput::Elements(n)) => ("elements", n),
            Some(Throughput::Bytes(n)) => ("bytes", n),
            None => ("none", 0),
        };
        let json = format!(
            "{{\"id\":\"{full}\",\"median_ns\":{median:.1},\"mean_ns\":{mean:.1},\
             \"samples\":{samples},\"iters_per_sample\":{iters},\
             \"throughput\":{{\"kind\":\"{tp_kind}\",\"per_iter\":{tp_n}}}}}\n"
        );
        if let Ok(mut file) = fs::File::create(dir.join(format!("{fname}.json"))) {
            let _ = file.write_all(json.as_bytes());
        }
    }

    /// Ends the group (report files are already written).
    pub fn finish(self) {}
}

/// Drives the closure under measurement.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` runs of the routine; the return value is black-boxed
    /// so the computation is not optimized away.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn fmt_rate(r: f64) -> String {
    if r >= 1e9 {
        format!("{:.2} G", r / 1e9)
    } else if r >= 1e6 {
        format!("{:.2} M", r / 1e6)
    } else if r >= 1e3 {
        format!("{:.2} K", r / 1e3)
    } else {
        format!("{r:.1} ")
    }
}

/// Declares a group runner function invoking each target with a fresh
/// [`Criterion`] (subset of criterion's macro: no custom config closure).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_formatting() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        let from: BenchmarkId = "plain".into();
        assert_eq!(from.id, "plain");
    }

    #[test]
    fn measures_and_reports() {
        std::env::set_var("CRITERION_SHIM_BUDGET_MS", "50");
        let mut c = Criterion {
            filter: None,
            out_dir: std::env::temp_dir().join("criterion-shim-selftest"),
        };
        let mut group = c.benchmark_group("shim");
        group.sample_size(3).throughput(Throughput::Elements(10));
        let mut ran = 0u64;
        group.bench_function("spin", |b| {
            b.iter(|| {
                ran += 1;
                std::hint::black_box((0..100u64).sum::<u64>())
            })
        });
        group.finish();
        assert!(ran > 0);
        std::env::remove_var("CRITERION_SHIM_BUDGET_MS");
    }
}
