//! Collection strategies (subset of proptest's `prop::collection`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Admissible lengths for a generated collection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max_inclusive: *r.end(),
        }
    }
}

/// Strategy for `Vec<T>` with lengths drawn from a [`SizeRange`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates vectors whose elements come from `element` and whose length
/// lies in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max_inclusive - self.size.min) as u64;
        let len = self.size.min
            + if span == 0 {
                0
            } else {
                rng.below(span + 1) as usize
            };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_range() {
        let mut rng = TestRng::from_seed(11);
        let s = vec(0usize..4, 2..6);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 4));
        }
    }

    #[test]
    fn fixed_size_from_usize() {
        let mut rng = TestRng::from_seed(12);
        let s = vec(0u64..2, 3);
        assert_eq!(s.generate(&mut rng).len(), 3);
    }
}
