//! Case execution: configuration, the deterministic RNG, and the loop that
//! drives generated cases through a property body.

/// Run configuration (subset of proptest's).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of successful cases required for the property to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Overrides the case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The property was violated; the runner panics with this message.
    Fail(String),
    /// The case was rejected by `prop_assume!`; it is re-drawn.
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Deterministic generator handed to strategies (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from an explicit seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)` (rejection sampling; `bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot sample an empty range");
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }
}

/// FNV-1a over the test name: distinct tests get distinct seed streams
/// while every run of the same test is identical.
fn seed_of(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Drives `config.cases` generated cases through the property. The closure
/// returns the case outcome plus a rendering of the generated inputs.
/// Panics — with the inputs, case index, and seed — on the first failing
/// case; rejected cases are re-drawn, with a cap to catch over-restrictive
/// assumptions.
pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> (Result<(), TestCaseError>, String),
{
    let base = seed_of(name);
    let max_rejects = (config.cases as u64) * 32;
    let mut rejects = 0u64;
    let mut draw = 0u64;
    let mut passed = 0u32;
    while passed < config.cases {
        let seed = base.wrapping_add(draw.wrapping_mul(0x2545_F491_4F6C_DD1D));
        draw += 1;
        let mut rng = TestRng::from_seed(seed);
        let (outcome, values) = case(&mut rng);
        match outcome {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejects += 1;
                assert!(
                    rejects <= max_rejects,
                    "property `{name}` rejected too many cases ({rejects}); \
                     weaken its prop_assume! conditions"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "property `{name}` failed at case {passed} (seed {seed:#x}):\n  \
                     inputs: {values}\n  {msg}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::from_seed(1);
        let mut b = TestRng::from_seed(1);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_is_in_range() {
        let mut rng = TestRng::from_seed(3);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    fn runner_counts_cases() {
        let mut n = 0;
        run_cases(&ProptestConfig::with_cases(10), "count", |_rng| {
            n += 1;
            (Ok(()), String::new())
        });
        assert_eq!(n, 10);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn runner_reports_failure() {
        run_cases(&ProptestConfig::with_cases(5), "fails", |_rng| {
            (Err(TestCaseError::fail("nope")), "x = 1; ".to_string())
        });
    }

    #[test]
    #[should_panic(expected = "rejected too many")]
    fn runner_caps_rejections() {
        run_cases(&ProptestConfig::with_cases(2), "rejects", |_rng| {
            (Err(TestCaseError::reject("never")), String::new())
        });
    }
}
