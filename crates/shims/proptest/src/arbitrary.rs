//! `any::<T>()` — canonical strategies per type (subset of proptest's
//! `Arbitrary`).

use std::fmt::Debug;
use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bool_takes_both_values() {
        let mut rng = TestRng::from_seed(5);
        let s = any::<bool>();
        let vals: Vec<bool> = (0..64).map(|_| s.generate(&mut rng)).collect();
        assert!(vals.iter().any(|&b| b) && vals.iter().any(|&b| !b));
    }

    #[test]
    fn ints_generate() {
        let mut rng = TestRng::from_seed(6);
        let _: u64 = any::<u64>().generate(&mut rng);
        let _: usize = any::<usize>().generate(&mut rng);
    }
}
