//! Value-generation strategies (subset of proptest's `Strategy`, without
//! shrinking).

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// Generates values of one type. `Value: Debug` so failing inputs can be
/// reported by the runner.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy from a generation closure — the building block `prop_compose!`
/// expands to.
pub struct FnStrategy<F>(F);

impl<T: Debug, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Wraps a closure as a strategy.
pub fn from_fn<T: Debug, F: Fn(&mut TestRng) -> T>(f: F) -> FnStrategy<F> {
    FnStrategy(f)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}

impl_signed_range_strategy!(i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = TestRng::from_seed(9);
        for _ in 0..500 {
            let v = (3usize..10).generate(&mut rng);
            assert!((3..10).contains(&v));
            let w = (5u64..=6).generate(&mut rng);
            assert!((5..=6).contains(&w));
            let s = (-4i32..4).generate(&mut rng);
            assert!((-4..4).contains(&s));
        }
    }

    #[test]
    fn just_is_constant() {
        let mut rng = TestRng::from_seed(1);
        assert_eq!(Just(41).generate(&mut rng), 41);
    }

    #[test]
    fn from_fn_composes() {
        let mut rng = TestRng::from_seed(2);
        let s = from_fn(|rng| (0u64..5).generate(rng) * 10);
        let v = s.generate(&mut rng);
        assert!(v % 10 == 0 && v < 50);
    }
}
