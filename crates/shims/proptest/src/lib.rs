//! Offline stand-in for the `proptest` property-testing crate.
//!
//! The build environment has no network access, so this vendored shim
//! implements the API subset this workspace's test suites use:
//!
//! - [`proptest!`] with an optional `#![proptest_config(...)]` header;
//! - [`prop_compose!`] for named strategy constructors;
//! - [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_assume!`];
//! - integer-range strategies, [`any`](arbitrary::any), and
//!   [`collection::vec`].
//!
//! Differences from real proptest: cases are generated from a fixed
//! deterministic seed (derived from the test name), and failing inputs are
//! reported but **not shrunk**. Deterministic seeding makes failures
//! reproducible without persistence files, which suits a hermetic CI.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything the test files import via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, proptest,
    };
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// item becomes a `#[test]` (the attribute is written at the call site)
/// that runs the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (config = $cfg:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                $crate::test_runner::run_cases(&config, stringify!($name), |__rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                    // Rendered before the body runs: the body may move the
                    // generated values.
                    let mut __vals = ::std::string::String::new();
                    $(
                        __vals.push_str(concat!(stringify!($arg), " = "));
                        __vals.push_str(&format!("{:?}; ", &$arg));
                    )+
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    (__result, __vals)
                });
            }
        )*
    };
}

/// Declares a named strategy constructor:
/// `fn name(params)(bindings in strategies) -> T { body }` becomes a
/// function returning `impl Strategy<Value = T>`.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])*
     $vis:vis fn $name:ident($($param:ident: $pty:ty),* $(,)?)
        ($($binding:ident in $strat:expr),+ $(,)?) -> $ret:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name($($param: $pty),*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::from_fn(move |__rng| {
                $(let $binding = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                $body
            })
        }
    };
}

/// Fails the enclosing property case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the enclosing property case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

/// Fails the enclosing property case if both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Rejects the current case (it is re-drawn, not counted as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}
