//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no network access, so this
//! vendored shim implements exactly the API subset the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! [`Rng::random_range`] over integer ranges. The generator is a
//! deterministic SplitMix64 — statistically solid for scheduling workloads
//! and reproducible per seed, which is all the schedule generators need.
//!
//! Swap the workspace `[workspace.dependencies] rand` entry back to a
//! crates.io version requirement to use the real crate; no call sites need
//! to change.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Seedable random number generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing random value generation (subset of `rand::Rng`).
pub trait Rng {
    /// Produces the next raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// Samples uniformly from a range (subset of `rand::Rng::random_range`).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(&mut |bound| sample_below(self, bound))
    }
}

/// Uniform sample in `[0, bound)` by rejection from the top multiple of
/// `bound`, so every value is equally likely.
fn sample_below<G: Rng + ?Sized>(rng: &mut G, bound: u64) -> u64 {
    debug_assert!(bound > 0, "empty sampling range");
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % bound;
        }
    }
}

/// Ranges that can be sampled from (subset of `rand::distr::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value; `draw(bound)` returns a uniform value in `[0, bound)`.
    fn sample(self, draw: &mut dyn FnMut(u64) -> u64) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, draw: &mut dyn FnMut(u64) -> u64) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + draw(span) as $t
            }
        }
    )*};
}

impl_sample_range!(u64, u32, usize);

/// Concrete generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng`: SplitMix64.
    ///
    /// Not cryptographic (neither is the workload): chosen for speed, full
    /// 64-bit state diffusion, and a one-word state that derives cleanly
    /// from `seed_from_u64`.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let v: usize = rng.random_range(0..5usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values hit: {seen:?}");
        for _ in 0..100 {
            let v: u64 = rng.random_range(10u64..12);
            assert!((10..12).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _: u64 = rng.random_range(3u64..3);
    }
}
