//! Whole-stack determinism: identical seeds and budgets produce identical
//! traces across every layer — the property that makes the experiment
//! harness reproducible.

use set_timeliness::agreement::AgreementStack;
use set_timeliness::bgsim::{run_reduction, TrivialKDecide};
use set_timeliness::core::{AgreementTask, ProcSet, ProcessId, StepSource, Value};
use set_timeliness::fd::WINNERSET_PROBE;
use set_timeliness::sched::{FictitiousCrash, RotatingStarvation, SeededRandom, SetTimely};

fn fingerprint_probes(timeline: &[(u64, u64)]) -> u64 {
    // FNV-style fold of the probe timeline.
    timeline.iter().fold(0xcbf29ce484222325u64, |h, &(s, v)| {
        (h ^ s.wrapping_mul(31).wrapping_add(v)).wrapping_mul(0x100000001b3)
    })
}

#[test]
fn agreement_stack_is_deterministic() {
    let run_once = || {
        let task = AgreementTask::new(2, 1, 4).unwrap();
        let inputs: Vec<Value> = vec![5, 6, 7, 8];
        let stack = AgreementStack::build(task, &inputs);
        let p = ProcSet::from_indices([0]);
        let q = ProcSet::from_indices([0, 1, 2]);
        let mut src = SetTimely::new(p, q, 6, SeededRandom::new(task.universe(), 99));
        let run = stack.run(&mut src, 1_500_000, ProcSet::EMPTY);
        let probes: Vec<u64> = task
            .universe()
            .processes()
            .map(|pr| fingerprint_probes(&run.report.probes.timeline(pr, WINNERSET_PROBE)))
            .collect();
        (
            run.report.steps,
            run.outcome.decisions.clone(),
            probes,
            run.report.op_counts.clone(),
        )
    };
    assert_eq!(run_once(), run_once());
}

#[test]
fn generators_are_deterministic() {
    let take = |mut s: Box<dyn StepSource>| -> Vec<ProcessId> {
        (0..5_000).map(|_| s.next_step().unwrap()).collect()
    };
    let u = set_timeliness::core::Universe::new(5).unwrap();
    let spec = set_timeliness::core::SystemSpec::new(1, 2, 5).unwrap();

    let a = take(Box::new(SeededRandom::new(u, 7)));
    let b = take(Box::new(SeededRandom::new(u, 7)));
    assert_eq!(a, b);

    let a = take(Box::new(RotatingStarvation::new(u, 2)));
    let b = take(Box::new(RotatingStarvation::new(u, 2)));
    assert_eq!(a, b);

    let a = take(Box::new(FictitiousCrash::new(spec, 3, 1)));
    let b = take(Box::new(FictitiousCrash::new(spec, 3, 1)));
    assert_eq!(a, b);
}

#[test]
fn bg_reduction_is_deterministic() {
    let run_once = || {
        let machines: Vec<TrivialKDecide> = (0..5)
            .map(|u| TrivialKDecide::new(u, 2, u as Value))
            .collect();
        let host = set_timeliness::core::Universe::new(3).unwrap();
        let mut src = SeededRandom::new(host, 1234);
        let r = run_reduction(3, machines, 64, &mut src, 300_000);
        (
            r.simulator_decisions,
            r.simulated_decisions,
            r.host_steps,
            r.simulated_schedules
                .iter()
                .map(|s| s.len())
                .collect::<Vec<_>>(),
        )
    };
    assert_eq!(run_once(), run_once());
}

#[test]
fn different_seeds_differ() {
    // Sanity check that the fingerprints above are actually sensitive.
    let u = set_timeliness::core::Universe::new(5).unwrap();
    let a: Vec<ProcessId> = {
        let mut s = SeededRandom::new(u, 1);
        (0..2_000).map(|_| s.next_step().unwrap()).collect()
    };
    let b: Vec<ProcessId> = {
        let mut s = SeededRandom::new(u, 2);
        (0..2_000).map(|_| s.next_step().unwrap()).collect()
    };
    assert_ne!(a, b);
}
