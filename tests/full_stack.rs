//! Cross-crate integration: the composed system exercised through the
//! public umbrella API, at parameters beyond the unit tests.

use set_timeliness::agreement::{AgreementStack, StackKind};
use set_timeliness::core::timeliness::empirical_bound;
use set_timeliness::core::{check_outcome, AgreementTask, ProcSet, ProcessId, StepSource, Value};
use set_timeliness::fd::convergence::winnerset_stabilization;
use set_timeliness::fd::{KAntiOmega, KAntiOmegaConfig};
use set_timeliness::sched::{CrashAfter, CrashPlan, Eventually, SeededRandom, SetTimely};
use set_timeliness::sim::{RunConfig, Sim, StopWhen};

fn inputs(n: usize) -> Vec<Value> {
    (0..n as Value).map(|v| 100 + v * v).collect()
}

/// A 6-process, k = 3, t = 4 run: bigger Π^k_n (C(6,3) = 20 candidate
/// sets), crashes up to t − 1, eventual (not immediate) synchrony.
#[test]
fn large_parameters_with_eventual_synchrony() {
    let (n, k, t) = (6usize, 3usize, 4usize);
    let task = AgreementTask::new(t, k, n).unwrap();
    let universe = task.universe();

    let p: ProcSet = (0..k).map(ProcessId::new).collect();
    let q: ProcSet = (0..=t).map(ProcessId::new).collect();
    let crashed: ProcSet = ProcSet::from_indices([5]);
    let plan = CrashPlan::all_at(crashed, 10_000);

    // Chaotic prefix (random, no enforced pair), then conforming body.
    let chaos = SeededRandom::new(universe, 77);
    let body_filler = CrashAfter::new(SeededRandom::new(universe, 78), plan.clone());
    let body = SetTimely::new(p, q, 2 * (t + 1), body_filler).with_crashes(plan);
    let mut src = Eventually::new(chaos, 20_000, body);

    let stack = AgreementStack::build(task, &inputs(n));
    assert_eq!(stack.kind(), StackKind::FdParallelPaxos);
    let run = stack.run(&mut src, 30_000_000, crashed);
    assert!(run.is_clean_termination(), "{:?}", run.violations);

    let distinct: std::collections::BTreeSet<Value> =
        run.outcome.decisions.iter().flatten().copied().collect();
    assert!(distinct.len() <= k);
}

/// The FD and agreement layers compose: the stabilized winnerset is the set
/// whose members actually decided the winning instances.
#[test]
fn fd_winnerset_drives_decisions() {
    let (n, k, t) = (4usize, 1usize, 2usize);
    let task = AgreementTask::new(t, k, n).unwrap();
    let universe = task.universe();
    let p = ProcSet::from_indices([1]); // make p1 the timely process
    let q: ProcSet = (0..=t).map(ProcessId::new).collect();
    let stack = AgreementStack::build(task, &inputs(n));
    let mut src = SetTimely::new(p, q, 4, SeededRandom::new(universe, 13));
    let run = stack.run(&mut src, 6_000_000, ProcSet::EMPTY);
    assert!(run.is_clean_termination(), "{:?}", run.violations);
    // k = 1: consensus. All processes decided one value.
    let distinct: std::collections::BTreeSet<Value> =
        run.outcome.decisions.iter().flatten().copied().collect();
    assert_eq!(distinct.len(), 1);
}

/// Running the FD standalone at scale and feeding its trace through the
/// core checker utilities.
#[test]
fn standalone_fd_at_n8() {
    let (n, k, t) = (8usize, 2usize, 3usize);
    let universe = set_timeliness::core::Universe::new(n).unwrap();
    let mut sim = Sim::new(universe);
    let fd = KAntiOmega::alloc(&mut sim, KAntiOmegaConfig::new(k, t));
    assert_eq!(fd.set_count(), 28); // C(8,2)
    for pr in universe.processes() {
        let fd = fd.clone();
        sim.spawn(pr, move |ctx| fd.run(ctx)).unwrap();
    }
    let p: ProcSet = (0..k).map(ProcessId::new).collect();
    let q: ProcSet = (0..=t).map(ProcessId::new).collect();
    let mut src = SetTimely::new(p, q, 8, SeededRandom::new(universe, 21));
    sim.run(&mut src, RunConfig::steps(3_000_000)).unwrap();
    let stab = winnerset_stabilization(&sim.report(), ProcSet::full(universe))
        .expect("n=8 FD must converge");
    assert_eq!(stab.winnerset.len(), k);
}

/// The executed schedule of a real run feeds the analyzer: what the
/// generator promises is what the simulator executed.
#[test]
fn executed_schedule_matches_generator_promise() {
    let universe = set_timeliness::core::Universe::new(4).unwrap();
    let mut sim = Sim::with_recording(universe, true);
    for pr in universe.processes() {
        sim.spawn(pr, move |ctx| async move {
            loop {
                ctx.pause().await;
            }
        })
        .unwrap();
    }
    let p = ProcSet::from_indices([2]);
    let q = ProcSet::from_indices([0, 1, 3]);
    let mut gen = SetTimely::new(p, q, 5, SeededRandom::new(universe, 31));
    sim.run(
        &mut gen,
        RunConfig::steps(50_000).stop_when(StopWhen::Never),
    )
    .unwrap();
    let executed = sim.report().executed.unwrap();
    assert_eq!(executed.len(), 50_000);
    assert!(empirical_bound(&executed, p, q) <= 5);
}

/// Outcome checking composes with the task descriptors across the API
/// boundary.
#[test]
fn checker_round_trip() {
    let task = AgreementTask::new(1, 2, 4).unwrap();
    let stack = AgreementStack::build(task, &inputs(4));
    let mut src = SeededRandom::new(task.universe(), 17);
    let run = stack.run(&mut src, 200_000, ProcSet::EMPTY);
    // Trivial algorithm: terminates fast on any fair schedule.
    assert!(run.is_clean_termination());
    let violations = check_outcome(&task, &run.outcome);
    assert!(violations.is_empty());
}

/// Generators compose: Eventually(chaos, SetTimely(crash-decorated)) is
/// itself a StepSource usable everywhere.
#[test]
fn source_combinators_compose() {
    let universe = set_timeliness::core::Universe::new(3).unwrap();
    let p = ProcSet::from_indices([0]);
    let q = ProcSet::from_indices([1, 2]);
    let plan = CrashPlan::new().crash(ProcessId::new(2), 700);
    let inner = CrashAfter::new(SeededRandom::new(universe, 3), plan.clone());
    let body = SetTimely::new(p, q, 3, inner).with_crashes(plan);
    let mut src = Eventually::new(SeededRandom::new(universe, 4), 500, body);
    let sched = src.take_schedule(5_000);
    assert_eq!(sched.len(), 5_000);
    // After the prefix and the crash point, p2 is silent. (The crash step
    // counts the *inner* source's emissions; SetTimely's injections shift
    // global positions later, so allow generous slack.)
    assert_eq!(sched.suffix(2_500).occurrences(ProcessId::new(2)), 0);
    // The suffix honors the timeliness bound.
    assert!(empirical_bound(&sched.suffix(500), p, q) <= 3);
}
