//! Negative-control tests of the measurement harness itself: deliberately
//! broken protocols must be *caught* by the checkers. A reproduction whose
//! instruments cannot fail is not measuring anything.

use set_timeliness::core::{
    check_outcome, AgreementTask, AgreementViolation, ProcSet, ProcessId, Schedule, ScheduleCursor,
    Universe, Value,
};
use set_timeliness::sim::{RunConfig, Sim, StopWhen};

/// A "protocol" in which everybody just decides its own input: with more
/// than k distinct inputs this must violate k-agreement.
#[test]
fn checker_catches_k_agreement_violation() {
    let n = 4;
    let task = AgreementTask::new(2, 2, n).unwrap();
    let universe = Universe::new(n).unwrap();
    let mut sim = Sim::new(universe);
    let inputs: Vec<Value> = (0..n as Value).collect(); // 4 distinct values
    for p in universe.processes() {
        let v = inputs[p.index()];
        sim.spawn(p, move |ctx| async move {
            ctx.pause().await;
            ctx.decide(v);
        })
        .unwrap();
    }
    let steps: Vec<usize> = (0..2 * n).map(|i| i % n).collect();
    let mut src = ScheduleCursor::new(Schedule::from_indices(steps));
    sim.run(
        &mut src,
        RunConfig::steps(100).stop_when(StopWhen::AllDecided(ProcSet::full(universe))),
    )
    .unwrap();
    let outcome = sim
        .report()
        .agreement_outcome(&inputs, ProcSet::full(universe));
    let violations = check_outcome(&task, &outcome);
    assert!(
        violations.iter().any(
            |v| matches!(v, AgreementViolation::KAgreement { values, .. } if values.len() == 4)
        ),
        "decide-own with 4 distinct inputs must violate 2-agreement: {violations:?}"
    );
}

/// A protocol that invents a value must be caught by validity.
#[test]
fn checker_catches_validity_violation() {
    let n = 3;
    let task = AgreementTask::new(1, 3, n).unwrap(); // k = n: agreement is lax
    let universe = Universe::new(n).unwrap();
    let mut sim = Sim::new(universe);
    let inputs: Vec<Value> = vec![1, 2, 3];
    for p in universe.processes() {
        sim.spawn(p, move |ctx| async move {
            ctx.pause().await;
            ctx.decide(777); // never proposed
        })
        .unwrap();
    }
    let mut src = ScheduleCursor::new(Schedule::from_indices([0, 1, 2]));
    sim.run(&mut src, RunConfig::steps(10)).unwrap();
    let outcome = sim
        .report()
        .agreement_outcome(&inputs, ProcSet::full(universe));
    let violations = check_outcome(&task, &outcome);
    assert!(
        violations
            .iter()
            .any(|v| matches!(v, AgreementViolation::Validity { value: 777, .. })),
        "inventing 777 must violate validity: {violations:?}"
    );
}

/// A protocol that never decides must be caught by termination — but only
/// within the fault budget.
#[test]
fn checker_catches_termination_violation_within_budget_only() {
    let n = 3;
    let task = AgreementTask::new(1, 1, n).unwrap();
    let universe = Universe::new(n).unwrap();
    let mut sim = Sim::new(universe);
    let inputs: Vec<Value> = vec![5, 5, 5];
    for p in universe.processes() {
        sim.spawn(p, move |ctx| async move {
            loop {
                ctx.pause().await;
            }
        })
        .unwrap();
    }
    let steps: Vec<usize> = (0..300).map(|i| i % n).collect();
    let mut src = ScheduleCursor::new(Schedule::from_indices(steps));
    sim.run(&mut src, RunConfig::steps(300)).unwrap();

    // Zero crashes (≤ t = 1): termination owed and violated.
    let outcome = sim
        .report()
        .agreement_outcome(&inputs, ProcSet::full(universe));
    let violations = check_outcome(&task, &outcome);
    assert!(violations
        .iter()
        .any(|v| matches!(v, AgreementViolation::Termination { .. })));

    // Two "crashes" (> t = 1): termination not owed.
    let outcome = sim
        .report()
        .agreement_outcome(&inputs, ProcSet::from_indices([0]));
    assert!(check_outcome(&task, &outcome).is_empty());
}

/// The FD convergence analyzer must NOT report stabilization for a detector
/// that flaps until the very end.
#[test]
fn convergence_analyzer_rejects_flapping() {
    use set_timeliness::fd::convergence::winnerset_stabilization;
    use set_timeliness::fd::WINNERSET_PROBE;

    let universe = Universe::new(2).unwrap();
    let mut sim = Sim::new(universe);
    for p in universe.processes() {
        sim.spawn(p, move |ctx| async move {
            let mut flip = 0u64;
            loop {
                // Publish alternating winnersets forever.
                ctx.probe(WINNERSET_PROBE, 1 + (flip % 2));
                flip += 1;
                ctx.pause().await;
            }
        })
        .unwrap();
    }
    let steps: Vec<usize> = (0..500).map(|i| i % 2).collect();
    let mut src = ScheduleCursor::new(Schedule::from_indices(steps));
    sim.run(&mut src, RunConfig::steps(500)).unwrap();
    // Final values may coincide across processes, but each process's own
    // timeline never stabilizes before its last publication; the detected
    // "stabilization step" must be at the very end of the trace, never
    // earlier.
    if let Some(stab) = winnerset_stabilization(&sim.report(), ProcSet::full(universe)) {
        assert!(
            stab.step >= 498,
            "flapping mistaken for early stabilization"
        );
    }
    let _ = ProcessId::new(0);
}
