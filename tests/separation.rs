//! The paper's headline, end to end: `S^k_{t+1,n}` is synchronous enough
//! for `(t,k,n)`-agreement but not for `(t+1,k,n)`- or
//! `(t,k−1,n)`-agreement — the first partially synchronous system
//! separating these sub-consensus problems.

use set_timeliness::agreement::{drive_adversarially, AgreementStack};
use set_timeliness::core::{
    matching_system, solvability, AgreementTask, ProcSet, ProcessId, SystemSpec, Value,
};
use set_timeliness::fd::TimeoutPolicy;
use set_timeliness::sched::{SeededRandom, SetTimely};

fn inputs(n: usize) -> Vec<Value> {
    (0..n as Value).map(|v| 40 + v).collect()
}

/// The canonical matching system solves its task (possibility side, run).
#[test]
fn matching_system_solves_its_task() {
    let (t, k, n) = (2usize, 2usize, 5usize);
    let task = AgreementTask::new(t, k, n).unwrap();
    let sys = matching_system(&task).unwrap();
    assert_eq!(sys, SystemSpec::new(k, t + 1, n).unwrap());

    let p: ProcSet = (0..k).map(ProcessId::new).collect();
    let q: ProcSet = (0..=t).map(ProcessId::new).collect();
    let stack = AgreementStack::build(task, &inputs(n));
    let mut src = SetTimely::new(p, q, 2 * (t + 1), SeededRandom::new(task.universe(), 3));
    let run = stack.run(&mut src, 6_000_000, ProcSet::EMPTY);
    assert!(run.is_clean_termination(), "{:?}", run.violations);
}

/// Predicate-level separation for every valid parameterization.
#[test]
fn predicate_separates_neighbours() {
    for n in 3..=10 {
        for t in 1..n - 1 {
            for k in 1..=t {
                let task = AgreementTask::new(t, k, n).unwrap();
                let sys = matching_system(&task).unwrap();
                assert!(solvability(&task, &sys).unwrap().is_solvable());

                let stronger_t = AgreementTask::new(t + 1, k, n).unwrap();
                assert!(!solvability(&stronger_t, &sys).unwrap().is_solvable());

                if k >= 2 {
                    let stronger_k = AgreementTask::new(t, k - 1, n).unwrap();
                    assert!(!solvability(&stronger_k, &sys).unwrap().is_solvable());
                }
            }
        }
    }
}

/// Run-level separation at (t,k,n) = (1,1,3): the matching system S^1_{2,3}
/// solves 1-resilient consensus; the adaptive adversary shows S^1_{2,3} is
/// not enough for (2,1,3) (stronger resilience) by blocking within the
/// fictitious-crash construction.
#[test]
fn run_level_separation_stronger_resilience() {
    let n = 3;
    // Possibility: (1,1,3) in S^1_{2,3}.
    let task = AgreementTask::new(1, 1, n).unwrap();
    let p = ProcSet::from_indices([0]);
    let q = ProcSet::from_indices([0, 1]);
    let stack = AgreementStack::build(task, &inputs(n));
    let mut src = SetTimely::new(p, q, 4, SeededRandom::new(task.universe(), 5));
    let run = stack.run(&mut src, 4_000_000, ProcSet::EMPTY);
    assert!(run.is_clean_termination(), "{:?}", run.violations);

    // Impossibility: (2,1,3) in S^1_{2,3} — j − i = 1 < t + 1 − k = 2.
    let harder = AgreementTask::new(2, 1, n).unwrap();
    let stack = AgreementStack::build_full(harder, &inputs(n), TimeoutPolicy::Increment, true);
    let crashed = ProcSet::from_indices([2]); // j − i = 1 fictitious crash
    let p_i = ProcSet::from_indices([0]);
    let adv = drive_adversarially(stack, 800_000, crashed, Some((p_i, p_i.union(crashed))));
    assert!(adv.run.is_safe());
    assert!(
        adv.run.outcome.decisions.iter().all(|d| d.is_none()),
        "{:?}",
        adv.run.outcome.decisions
    );
    assert_eq!(
        adv.certificate.unwrap().bound,
        1,
        "S^1_{{2,3}} membership witness"
    );
}

/// Run-level separation at stronger agreement: S^2_{3,4} solves (2,2,4) but
/// the adaptive adversary blocks (2,1,4) there (i = 2 > k = 1).
#[test]
fn run_level_separation_stronger_agreement() {
    let n = 4;
    let task = AgreementTask::new(2, 2, n).unwrap();
    let p = ProcSet::from_indices([0, 1]);
    let q = ProcSet::from_indices([0, 1, 2]);
    let stack = AgreementStack::build(task, &inputs(n));
    let mut src = SetTimely::new(p, q, 6, SeededRandom::new(task.universe(), 8));
    let run = stack.run(&mut src, 6_000_000, ProcSet::EMPTY);
    assert!(run.is_clean_termination(), "{:?}", run.violations);

    // (2,1,4) in S^2_{3,4}: i = 2 > k = 1 → freezer adversary, no
    // pre-crashes; certificate: the 2-set {p0,p1} stays timely.
    let harder = AgreementTask::new(2, 1, n).unwrap();
    let stack = AgreementStack::build_full(harder, &inputs(n), TimeoutPolicy::Increment, true);
    let witness = ProcSet::from_indices([0, 1]);
    let full = ProcSet::full(harder.universe());
    let adv = drive_adversarially(stack, 800_000, ProcSet::EMPTY, Some((witness, full)));
    assert!(adv.run.is_safe());
    assert!(adv.run.outcome.decisions.iter().all(|d| d.is_none()));
    assert!(adv.max_frozen <= 1);
    assert!(adv.certificate.unwrap().bound <= 4 * n);
}
